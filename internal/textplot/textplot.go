// Package textplot renders the paper's figures as ASCII plots so the
// reproduction harness can display them in a terminal and record them in
// EXPERIMENTS.md. Plots are deliberately simple: a character grid with
// axis annotations, enough to compare shapes against the paper's figures.
package textplot

import (
	"fmt"
	"math"
	"strings"
)

// Scatter renders y-values against x-values on a w×h character grid.
// Points map to '*'; the y-axis is annotated with min/max values.
func Scatter(xs, ys []float64, w, h int, title string) string {
	if w < 8 {
		w = 8
	}
	if h < 4 {
		h = 4
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	if len(xs) == 0 || len(xs) != len(ys) {
		b.WriteString("(no data)\n")
		return b.String()
	}
	minX, maxX := minMax(xs)
	minY, maxY := minMax(ys)
	grid := make([][]byte, h)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", w))
	}
	for i := range xs {
		col := scale(xs[i], minX, maxX, w)
		row := h - 1 - scale(ys[i], minY, maxY, h)
		grid[row][col] = '*'
	}
	yLabelW := len(fmt.Sprintf("%.6g", maxY))
	if l := len(fmt.Sprintf("%.6g", minY)); l > yLabelW {
		yLabelW = l
	}
	for i, row := range grid {
		label := strings.Repeat(" ", yLabelW)
		switch i {
		case 0:
			label = fmt.Sprintf("%*.6g", yLabelW, maxY)
		case h - 1:
			label = fmt.Sprintf("%*.6g", yLabelW, minY)
		}
		fmt.Fprintf(&b, "%s |%s|\n", label, row)
	}
	fmt.Fprintf(&b, "%s  %-*.6g%*.6g\n", strings.Repeat(" ", yLabelW), w/2, minX, w-w/2, maxX)
	return b.String()
}

// Steps renders a monotone step curve (e.g. a coverage curve) with the
// same conventions as Scatter but connecting gaps horizontally.
func Steps(xs, ys []float64, w, h int, title string) string {
	if len(xs) == 0 || len(xs) != len(ys) {
		return Scatter(xs, ys, w, h, title)
	}
	// Densify: one sample per column using the latest value at or before
	// the column's x.
	minX, maxX := minMax(xs)
	dx := (maxX - minX) / float64(max(w-1, 1))
	densX := make([]float64, 0, w)
	densY := make([]float64, 0, w)
	j := 0
	last := ys[0]
	for c := 0; c < w; c++ {
		x := minX + dx*float64(c)
		for j < len(xs) && xs[j] <= x+1e-12 {
			last = ys[j]
			j++
		}
		densX = append(densX, x)
		densY = append(densY, last)
	}
	return Scatter(densX, densY, w, h, title)
}

// Sequence renders a two-valued event sequence (the paper's Figure 9:
// packet vs non-packet accesses over the instruction stream). Events with
// positive class are drawn on the upper band, negative on the lower.
func Sequence(instr []int, isUpper []bool, w int, upperLabel, lowerLabel, title string) string {
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	if len(instr) == 0 || len(instr) != len(isUpper) {
		b.WriteString("(no data)\n")
		return b.String()
	}
	if w < 8 {
		w = 8
	}
	maxI := instr[0]
	for _, v := range instr {
		if v > maxI {
			maxI = v
		}
	}
	upper := []byte(strings.Repeat(" ", w))
	lower := []byte(strings.Repeat(" ", w))
	for i, n := range instr {
		col := scale(float64(n), 0, float64(maxI), w)
		if isUpper[i] {
			upper[col] = '*'
		} else {
			lower[col] = '*'
		}
	}
	labelW := len(upperLabel)
	if len(lowerLabel) > labelW {
		labelW = len(lowerLabel)
	}
	fmt.Fprintf(&b, "%*s |%s|\n", labelW, upperLabel, upper)
	fmt.Fprintf(&b, "%*s |%s|\n", labelW, lowerLabel, lower)
	fmt.Fprintf(&b, "%*s  0%*d\n", labelW, "", w-1, maxI)
	return b.String()
}

func minMax(v []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, x := range v {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// scale maps v in [lo, hi] to a cell index in [0, n).
func scale(v, lo, hi float64, n int) int {
	if hi <= lo {
		return 0
	}
	i := int((v - lo) / (hi - lo) * float64(n-1))
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return i
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
