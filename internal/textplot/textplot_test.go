package textplot

import (
	"strings"
	"testing"
)

func TestScatterBasic(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{0, 10, 20, 30}
	out := Scatter(xs, ys, 20, 6, "title")
	if !strings.HasPrefix(out, "title\n") {
		t.Errorf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + h rows + x axis.
	if len(lines) != 1+6+1 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(out, "*") {
		t.Error("no points plotted")
	}
	// Max y label on the top row, min on the bottom.
	if !strings.Contains(lines[1], "30") {
		t.Errorf("top row missing max label: %q", lines[1])
	}
	if !strings.Contains(lines[6], "0") {
		t.Errorf("bottom row missing min label: %q", lines[6])
	}
	// Monotone data: the '*' in the top row must be right of the one in
	// the bottom row.
	top := strings.IndexByte(lines[1], '*')
	bottom := strings.IndexByte(lines[6], '*')
	if top <= bottom {
		t.Errorf("monotone data not rendered monotone: top * at %d, bottom at %d", top, bottom)
	}
}

func TestScatterEmptyAndMismatched(t *testing.T) {
	if out := Scatter(nil, nil, 10, 5, ""); !strings.Contains(out, "no data") {
		t.Errorf("empty input: %q", out)
	}
	if out := Scatter([]float64{1}, []float64{1, 2}, 10, 5, ""); !strings.Contains(out, "no data") {
		t.Errorf("mismatched input: %q", out)
	}
}

func TestScatterConstantSeries(t *testing.T) {
	// Constant y must not divide by zero; all points land on one row.
	xs := []float64{0, 1, 2}
	ys := []float64{5, 5, 5}
	out := Scatter(xs, ys, 16, 4, "")
	rows := 0
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "*") {
			rows++
		}
	}
	if rows != 1 {
		t.Errorf("constant series occupies %d rows, want 1\n%s", rows, out)
	}
}

func TestScatterMinimumDimensions(t *testing.T) {
	out := Scatter([]float64{0, 1}, []float64{0, 1}, 1, 1, "")
	if out == "" {
		t.Error("tiny dimensions produced nothing")
	}
}

func TestSteps(t *testing.T) {
	xs := []float64{1, 2, 3, 10}
	ys := []float64{0.1, 0.5, 0.9, 1.0}
	out := Steps(xs, ys, 40, 8, "coverage")
	if !strings.Contains(out, "coverage") || !strings.Contains(out, "*") {
		t.Errorf("steps output malformed:\n%s", out)
	}
	// Step plots fill horizontally: many columns carry a point.
	stars := strings.Count(out, "*")
	if stars < 20 {
		t.Errorf("step plot too sparse: %d points", stars)
	}
}

func TestSequence(t *testing.T) {
	instr := []int{0, 10, 20, 30, 40}
	isUpper := []bool{true, true, false, false, true}
	out := Sequence(instr, isUpper, 40, "packet", "non-packet", "fig9")
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // title + 2 bands + axis
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "packet") || !strings.Contains(lines[2], "non-packet") {
		t.Errorf("band labels missing:\n%s", out)
	}
	if strings.Count(lines[1], "*") == 0 || strings.Count(lines[2], "*") == 0 {
		t.Errorf("bands not populated:\n%s", out)
	}
	// Empty input.
	if out := Sequence(nil, nil, 20, "a", "b", ""); !strings.Contains(out, "no data") {
		t.Errorf("empty sequence: %q", out)
	}
}

func TestScaleBounds(t *testing.T) {
	if scale(5, 0, 10, 10) < 0 || scale(5, 0, 10, 10) > 9 {
		t.Error("scale out of range")
	}
	if scale(0, 0, 10, 10) != 0 {
		t.Error("scale(min) != 0")
	}
	if scale(10, 0, 10, 10) != 9 {
		t.Error("scale(max) != n-1")
	}
	if scale(99, 0, 10, 10) != 9 {
		t.Error("scale clamps above")
	}
	if scale(-5, 0, 10, 10) != 0 {
		t.Error("scale clamps below")
	}
	if scale(1, 5, 5, 10) != 0 {
		t.Error("degenerate range not handled")
	}
}
