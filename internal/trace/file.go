package trace

import (
	"errors"
	"io"
	"os"
)

// errMmapUnavailable means the platform or file cannot be memory-mapped;
// OpenPcap falls back to the buffered reader.
var errMmapUnavailable = errors.New("trace: mmap unavailable")

// FileReader is the interface OpenPcap returns: a batch-capable,
// position-reporting pcap reader over a file, with the skip-and-resync
// controls both concrete readers share. Close releases the file and,
// when the reader is mmap-backed, the mapping — after which no packet
// returned by an mmap-backed reader may be used.
type FileReader interface {
	BatchReader
	Positioned
	io.Closer
	// SetSkipMalformed switches from fail-fast to skip-and-resync.
	SetSkipMalformed(budget int)
	// Skipped returns how many malformed records were skipped so far.
	Skipped() int
	// LinkType returns the capture's link type.
	LinkType() uint32
}

// mmapPcapReader backs a BytesPcapReader with a read-only mapping of the
// trace file.
type mmapPcapReader struct {
	*BytesPcapReader
	f     *os.File
	unmap func() error
}

func (m *mmapPcapReader) Close() error {
	err := m.unmap()
	if cerr := m.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// filePcapReader is the buffered fallback: a PcapReader that owns its
// file handle.
type filePcapReader struct {
	*PcapReader
	f *os.File
}

func (r *filePcapReader) Close() error { return r.f.Close() }

// OpenPcap opens a pcap trace for reading, memory-mapping it when the
// platform allows so packet data is served zero-copy straight from the
// page cache. When mmap is unavailable (non-unix platform, empty file,
// oversized file on a 32-bit platform) it silently falls back to the
// buffered reader; both paths satisfy the same FileReader contract and
// produce identical packets, positions, and errors.
func OpenPcap(path string) (FileReader, error) {
	return openPcap(path, true)
}

// OpenPcapBuffered opens a pcap trace with the buffered reader, never
// mmap. Use it when packets must not alias a shared mapping — for
// example when they outlive the reader's Close.
func OpenPcapBuffered(path string) (FileReader, error) {
	return openPcap(path, false)
}

func openPcap(path string, tryMmap bool) (FileReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if tryMmap {
		if data, unmap, merr := mmapFile(f, st.Size()); merr == nil {
			r, err := NewBytesPcapReader(data)
			if err != nil {
				unmap()
				f.Close()
				return nil, err
			}
			return &mmapPcapReader{BytesPcapReader: r, f: f, unmap: unmap}, nil
		}
	}
	r, err := NewPcapReader(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	r.SetTotal(st.Size())
	return &filePcapReader{PcapReader: r, f: f}, nil
}
