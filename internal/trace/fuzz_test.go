package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

// FuzzPcapReader checks the pcap reader is panic-free and terminates on
// arbitrary input, in both fail-fast and skip-and-resync modes: every
// corruption surfaces as a typed *MalformedRecordError (or a clean io
// error), packet invariants hold, and skip mode never exceeds its budget.
func FuzzPcapReader(f *testing.F) {
	var buf bytes.Buffer
	w, _ := NewPcapWriter(&buf)
	data := make([]byte, 40)
	data[0] = 0x45
	_ = w.WritePacket(&Packet{Sec: 1, Usec: 2, Data: data})
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add(buf.Bytes()[:20])
	f.Add(bytes.Repeat([]byte{0xA1}, 64))
	corrupt := bytes.Clone(buf.Bytes())
	binary.LittleEndian.PutUint32(corrupt[pcapHeaderLen+8:], 0xFFFFFFFF)
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, b []byte) {
		for _, budget := range []int{-1, 0, 2} {
			r, err := NewPcapReader(bytes.NewReader(b))
			if err != nil {
				continue // bad magic or truncated global header
			}
			if budget >= 0 {
				r.SetSkipMalformed(budget)
			}
			for n := 0; n < 1000; n++ {
				p, err := r.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					var merr *MalformedRecordError
					if errors.Is(err, ErrMalformedRecord) && !errors.As(err, &merr) {
						t.Fatalf("malformed error is not typed: %v", err)
					}
					break
				}
				if len(p.Data) == 0 || p.WireLen < len(p.Data) {
					t.Fatalf("invariant broken: len(Data)=%d WireLen=%d", len(p.Data), p.WireLen)
				}
			}
			if budget > 0 && r.Skipped() > budget {
				t.Fatalf("Skipped %d exceeds budget %d", r.Skipped(), budget)
			}
		}
	})
}

// FuzzTSHReader does the same for the TSH reader.
func FuzzTSHReader(f *testing.F) {
	f.Add(make([]byte, TSHRecordLen))
	f.Add(make([]byte, TSHRecordLen*2+10))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, b []byte) {
		r := NewTSHReader(bytes.NewReader(b))
		for {
			p, err := r.Next()
			if err != nil {
				return
			}
			if len(p.Data) != 36 {
				t.Fatalf("TSH packet with %d bytes", len(p.Data))
			}
		}
	})
}
