package trace

import (
	"bytes"
	"io"
	"testing"
)

// FuzzPcapReader checks the pcap reader is panic-free and terminates on
// arbitrary input.
func FuzzPcapReader(f *testing.F) {
	var buf bytes.Buffer
	w, _ := NewPcapWriter(&buf)
	data := make([]byte, 40)
	data[0] = 0x45
	_ = w.WritePacket(&Packet{Sec: 1, Usec: 2, Data: data})
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add(buf.Bytes()[:20])
	f.Add(bytes.Repeat([]byte{0xA1}, 64))

	f.Fuzz(func(t *testing.T, b []byte) {
		r, err := NewPcapReader(bytes.NewReader(b))
		if err != nil {
			return
		}
		for n := 0; n < 1000; n++ {
			p, err := r.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				return
			}
			if len(p.Data) == 0 {
				t.Fatal("reader returned empty packet without error")
			}
		}
	})
}

// FuzzTSHReader does the same for the TSH reader.
func FuzzTSHReader(f *testing.F) {
	f.Add(make([]byte, TSHRecordLen))
	f.Add(make([]byte, TSHRecordLen*2+10))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, b []byte) {
		r := NewTSHReader(bytes.NewReader(b))
		for {
			p, err := r.Next()
			if err != nil {
				return
			}
			if len(p.Data) != 36 {
				t.Fatalf("TSH packet with %d bytes", len(p.Data))
			}
		}
	})
}
