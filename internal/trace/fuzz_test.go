package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

// FuzzPcapReader checks the pcap reader is panic-free and terminates on
// arbitrary input, in both fail-fast and skip-and-resync modes: every
// corruption surfaces as a typed *MalformedRecordError (or a clean io
// error), packet invariants hold, and skip mode never exceeds its budget.
// It also runs the in-memory BytesPcapReader in lockstep as a
// differential oracle: both readers must produce the same packets, the
// same positions, and the same errors on every input.
func FuzzPcapReader(f *testing.F) {
	var buf bytes.Buffer
	w, _ := NewPcapWriter(&buf)
	data := make([]byte, 40)
	data[0] = 0x45
	_ = w.WritePacket(&Packet{Sec: 1, Usec: 2, Data: data})
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add(buf.Bytes()[:20])
	f.Add(bytes.Repeat([]byte{0xA1}, 64))
	corrupt := bytes.Clone(buf.Bytes())
	binary.LittleEndian.PutUint32(corrupt[pcapHeaderLen+8:], 0xFFFFFFFF)
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, b []byte) {
		for _, budget := range []int{-1, 0, 2} {
			r, err := NewPcapReader(bytes.NewReader(b))
			br, berr := NewBytesPcapReader(b)
			if (err == nil) != (berr == nil) {
				t.Fatalf("construction diverges: buffered %v, bytes %v", err, berr)
			}
			if err != nil {
				continue // bad magic or truncated global header
			}
			if budget >= 0 {
				r.SetSkipMalformed(budget)
				br.SetSkipMalformed(budget)
			}
			for n := 0; n < 1000; n++ {
				p, err := r.Next()
				bp, berr := br.Next()
				if (err == nil) != (berr == nil) ||
					(err != nil && err.Error() != berr.Error()) {
					t.Fatalf("error diverges at packet %d: buffered %v, bytes %v", n, err, berr)
				}
				if err == io.EOF {
					break
				}
				if err != nil {
					var merr *MalformedRecordError
					if errors.Is(err, ErrMalformedRecord) && !errors.As(err, &merr) {
						t.Fatalf("malformed error is not typed: %v", err)
					}
					break
				}
				if len(p.Data) == 0 || p.WireLen < len(p.Data) {
					t.Fatalf("invariant broken: len(Data)=%d WireLen=%d", len(p.Data), p.WireLen)
				}
				if p.Sec != bp.Sec || p.Usec != bp.Usec || p.WireLen != bp.WireLen || !bytes.Equal(p.Data, bp.Data) {
					t.Fatalf("packet %d diverges: buffered %+v, bytes %+v", n, p, bp)
				}
				if r.Pos() != br.Pos() {
					t.Fatalf("Pos diverges at packet %d: buffered %d, bytes %d", n, r.Pos(), br.Pos())
				}
			}
			if budget > 0 && r.Skipped() > budget {
				t.Fatalf("Skipped %d exceeds budget %d", r.Skipped(), budget)
			}
			if r.Skipped() != br.Skipped() {
				t.Fatalf("Skipped diverges: buffered %d, bytes %d", r.Skipped(), br.Skipped())
			}
		}
	})
}

// FuzzTSHReader does the same for the TSH reader.
func FuzzTSHReader(f *testing.F) {
	f.Add(make([]byte, TSHRecordLen))
	f.Add(make([]byte, TSHRecordLen*2+10))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, b []byte) {
		r := NewTSHReader(bytes.NewReader(b))
		for {
			p, err := r.Next()
			if err != nil {
				return
			}
			if len(p.Data) != 36 {
				t.Fatalf("TSH packet with %d bytes", len(p.Data))
			}
		}
	})
}
