package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// --- reader bugfix regressions -----------------------------------------

// TestPcapResyncExhaustedTyped pins the resync-exhaustion error shape:
// it must be a *MalformedRecordError carrying the corrupt record's offset,
// like every other malformed-record path, not a bare wrapped sentinel.
func TestPcapResyncExhaustedTyped(t *testing.T) {
	pkts := []*Packet{{Sec: 1, Data: ipv4Packet(1, 2, 8)}}
	raw := buildPcap(t, pkts)
	corruptOff := int64(len(raw))
	// A corrupt record header followed by more than a full resync window
	// of bytes that never form a plausible header (usec field stays
	// 0xFFFFFFFF >= 1e6).
	rec := make([]byte, pcapRecordLen)
	binary.LittleEndian.PutUint32(rec[8:], 0xFFFFFFFF)
	raw = append(raw, rec...)
	raw = append(raw, bytes.Repeat([]byte{0xFF}, pcapResyncWindow+64)...)

	r, err := NewPcapReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	r.SetSkipMalformed(-1)
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	_, err = r.Next()
	var mr *MalformedRecordError
	if !errors.As(err, &mr) {
		t.Fatalf("resync exhaustion err = %v, want *MalformedRecordError", err)
	}
	if mr.Offset != corruptOff {
		t.Errorf("Offset = %d, want corrupt record start %d", mr.Offset, corruptOff)
	}
	if !strings.Contains(mr.Reason, "no plausible record header") {
		t.Errorf("Reason = %q, want resync exhaustion reason", mr.Reason)
	}
	if !errors.Is(err, ErrMalformedRecord) {
		t.Error("resync exhaustion does not unwrap to ErrMalformedRecord")
	}
}

// TestPcapResyncRejectsUnconfirmableCandidate covers the stale-recOff /
// unconfirmed-candidate interaction: a resync scan that slides onto a
// header whose claimed body exceeds the lookahead buffer must reject it
// (it cannot be confirmed) rather than lock on. On the pre-fix reader the
// candidate was accepted unconfirmed and its truncated body surfaced as a
// malformed-body error attributed to the original corrupt record's offset
// — both the acceptance and the offset were wrong.
func TestPcapResyncRejectsUnconfirmableCandidate(t *testing.T) {
	// Hand-rolled header with snaplen 0 (no snap bound), so the oversize
	// candidate below is length-plausible and only confirmability decides.
	var buf bytes.Buffer
	hdr := make([]byte, pcapHeaderLen)
	binary.LittleEndian.PutUint32(hdr[0:], pcapMagic)
	binary.LittleEndian.PutUint32(hdr[20:], LinkTypeRaw)
	buf.Write(hdr)
	body := ipv4Packet(1, 2, 8)
	rec := make([]byte, pcapRecordLen)
	binary.LittleEndian.PutUint32(rec[0:], 1)
	binary.LittleEndian.PutUint32(rec[8:], uint32(len(body)))
	binary.LittleEndian.PutUint32(rec[12:], uint32(len(body)))
	buf.Write(rec)
	buf.Write(body)
	// Corrupt record header, then a plausible-looking header claiming a
	// body larger than the lookahead buffer, then only part of that body
	// (enough to fill the lookahead so the end is not visible) before EOF.
	corrupt := make([]byte, pcapRecordLen)
	binary.LittleEndian.PutUint32(corrupt[8:], 0xFFFFFFFF)
	buf.Write(corrupt)
	cand := make([]byte, pcapRecordLen)
	binary.LittleEndian.PutUint32(cand[0:], 2)              // sec
	binary.LittleEndian.PutUint32(cand[8:], pcapBufSize*2)  // incl > lookahead
	binary.LittleEndian.PutUint32(cand[12:], pcapBufSize*2) // orig
	buf.Write(cand)
	buf.Write(bytes.Repeat([]byte{0xFF}, pcapBufSize+1024)) // partial body
	raw := buf.Bytes()

	r, err := NewPcapReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	r.SetSkipMalformed(1)
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	// The candidate is unconfirmable, the scan runs to EOF, and the
	// corrupt tail is absorbed by the skip that was already consumed.
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("Next = %v, want EOF (unconfirmable candidate rejected)", err)
	}
	if r.Skipped() != 1 {
		t.Errorf("Skipped = %d, want 1", r.Skipped())
	}
}

// TestPcapWriterSnapLenMatchesReader pins bugfix c: the writer's declared
// snap length must equal the reader's maximum supported record length, so
// every record the writer accepts reads back instead of being rejected by
// recHeaderProblem as over-snap.
func TestPcapWriterSnapLenMatchesReader(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewPcapWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if snap := binary.LittleEndian.Uint32(buf.Bytes()[16:]); snap != pcapMaxRecordLen {
		t.Errorf("declared snaplen = %d, want %d", snap, pcapMaxRecordLen)
	}

	// A >64 KiB packet: rejected as over-snap on read-back pre-fix.
	big := ipv4Packet(9, 10, 70000)
	if err := w.WritePacket(&Packet{Sec: 7, Data: big}); err != nil {
		t.Fatal(err)
	}
	r, err := NewPcapReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	p, err := r.Next()
	if err != nil {
		t.Fatalf("reading back 70000-byte record: %v", err)
	}
	if !bytes.Equal(p.Data, big) {
		t.Error("big record data corrupted in round trip")
	}

	// The writer still rejects what the reader could never accept.
	err = w.WritePacket(&Packet{Data: make([]byte, pcapMaxRecordLen+1)})
	if err == nil {
		t.Error("over-maximum packet accepted by writer")
	}
}

// TestSkipBudgetSemanticsShared pins the budget semantics both formats
// now share through skipState: <= 0 unlimited, > 0 an exact cap, with
// Skipped reporting the count.
func TestSkipBudgetSemanticsShared(t *testing.T) {
	var s skipState
	if s.consumeSkip() {
		t.Error("skip consumed while disabled")
	}
	s.enableSkip(2)
	for i := 0; i < 2; i++ {
		if !s.consumeSkip() {
			t.Fatalf("skip %d rejected within budget", i+1)
		}
	}
	if s.consumeSkip() {
		t.Error("skip consumed beyond budget")
	}
	if s.Skipped() != 2 {
		t.Errorf("Skipped = %d, want 2", s.Skipped())
	}
	var unlimited skipState
	unlimited.enableSkip(0)
	for i := 0; i < 100; i++ {
		if !unlimited.consumeSkip() {
			t.Fatalf("unlimited budget refused skip %d", i)
		}
	}

	// Cross-format parity: budget 2 against 3 malformed records behaves
	// identically for pcap and TSH — two skips, then a typed error.
	// Corruptions at records 1, 4, 7 are spaced by two good records so
	// each costs exactly one pcap skip (resync confirmation needs the
	// record after the recovered one to be intact too).
	var pcapBuf bytes.Buffer
	w, _ := NewPcapWriter(&pcapBuf)
	good := ipv4Packet(1, 2, 4)
	for i := 0; i < 10; i++ {
		_ = w.WritePacket(&Packet{Sec: uint32(i), Data: good})
	}
	raw := pcapBuf.Bytes()
	recLen := pcapRecordLen + len(good)
	for _, i := range []int{1, 4, 7} {
		binary.LittleEndian.PutUint32(raw[pcapHeaderLen+i*recLen+8:], 0xFFFFFFFF)
	}
	pr, err := NewPcapReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	pr.SetSkipMalformed(2)

	var tshBuf bytes.Buffer
	tw := NewTSHWriter(&tshBuf)
	for i := 0; i < 10; i++ {
		_ = tw.WritePacket(&Packet{Sec: uint32(i), Data: good})
	}
	traw := tshBuf.Bytes()
	for _, i := range []int{1, 4, 7} {
		traw[i*TSHRecordLen+8] = 0x60 // IP version 6
	}
	tr := NewTSHReader(bytes.NewReader(traw))
	tr.SetSkipMalformed(2)

	for name, r := range map[string]interface {
		Reader
		Skipped() int
	}{"pcap": pr, "tsh": tr} {
		n := 0
		var last error
		for {
			_, err := r.Next()
			if err != nil {
				last = err
				break
			}
			n++
		}
		if !errors.Is(last, ErrMalformedRecord) {
			t.Errorf("%s: err after budget = %v, want malformed", name, last)
		}
		if r.Skipped() != 2 {
			t.Errorf("%s: Skipped = %d, want 2", name, r.Skipped())
		}
		// Records 0, 2, 3, 5, 6 are recovered; the third corruption at
		// record 7 exhausts the budget and errors.
		if n != 5 {
			t.Errorf("%s: recovered %d packets, want 5", name, n)
		}
	}
}

// --- batch / bytes / file reader equivalence ---------------------------

type pcapLike interface {
	Reader
	Positioned
	Skipped() int
	SetSkipMalformed(int)
}

type drainResult struct {
	pkts    []*Packet
	pos     []int64
	err     error
	skipped int
}

func drain(r pcapLike, budget int, useBudget bool) drainResult {
	var d drainResult
	if useBudget {
		r.SetSkipMalformed(budget)
	}
	for i := 0; i < 100000; i++ {
		p, err := r.Next()
		if err != nil {
			if err != io.EOF {
				d.err = err
			}
			break
		}
		d.pkts = append(d.pkts, p)
		d.pos = append(d.pos, r.Pos())
	}
	d.skipped = r.Skipped()
	return d
}

func errString(e error) string {
	if e == nil {
		return "<nil>"
	}
	return e.Error()
}

func compareDrains(t *testing.T, name string, want, got drainResult) {
	t.Helper()
	if errString(want.err) != errString(got.err) {
		t.Errorf("%s: err = %q, want %q", name, errString(got.err), errString(want.err))
	}
	var wantMR, gotMR *MalformedRecordError
	if errors.As(want.err, &wantMR) != errors.As(got.err, &gotMR) {
		t.Errorf("%s: typed-error shape diverges", name)
	} else if wantMR != nil && (wantMR.Offset != gotMR.Offset || wantMR.Reason != gotMR.Reason) {
		t.Errorf("%s: malformed error %v vs %v", name, gotMR, wantMR)
	}
	if want.skipped != got.skipped {
		t.Errorf("%s: skipped = %d, want %d", name, got.skipped, want.skipped)
	}
	if len(want.pkts) != len(got.pkts) {
		t.Fatalf("%s: %d packets, want %d", name, len(got.pkts), len(want.pkts))
	}
	for i := range want.pkts {
		if !reflect.DeepEqual(want.pkts[i], got.pkts[i]) {
			t.Fatalf("%s: packet %d = %+v, want %+v", name, i, got.pkts[i], want.pkts[i])
		}
		if want.pos[i] != got.pos[i] {
			t.Errorf("%s: Pos after packet %d = %d, want %d", name, i, got.pos[i], want.pos[i])
		}
	}
}

// equivalenceCorpora builds captures covering the interesting reader
// paths: clean files, both link types, mixed/non-IP frames, corruption
// with and without recoverable records, and truncated tails.
func equivalenceCorpora(t *testing.T) map[string][]byte {
	t.Helper()
	corp := map[string][]byte{}

	var pkts []*Packet
	for i := 0; i < 50; i++ {
		pkts = append(pkts, &Packet{Sec: uint32(i), Usec: uint32(i * 7 % 1000000),
			Data: ipv4Packet(uint32(i), uint32(i+1), i%64), WireLen: 2000})
	}
	clean := buildPcap(t, pkts)
	corp["clean"] = clean

	corrupt := bytes.Clone(clean)
	recLen := func(i int) int { return pcapRecordLen + len(pkts[i].Data) }
	off := pcapHeaderLen
	for i := 0; i < 3; i++ {
		off += recLen(i)
	}
	binary.LittleEndian.PutUint32(corrupt[off+8:], 0xFFFFFFFF)
	corp["corrupt-mid"] = corrupt

	corp["trunc-header"] = clean[:len(clean)-len(pkts[len(pkts)-1].Data)-3]
	corp["trunc-body"] = clean[:len(clean)-5]
	corp["empty-records"] = clean[:pcapHeaderLen]
	corp["garbage-tail"] = append(bytes.Clone(clean), 0xDE, 0xAD, 0xBE, 0xEF, 0x01, 0x02)

	// Ethernet link type with IPv4, non-IPv4, and runt frames mixed in.
	var eth bytes.Buffer
	hdr := make([]byte, pcapHeaderLen)
	binary.LittleEndian.PutUint32(hdr[0:], pcapMagic)
	binary.LittleEndian.PutUint32(hdr[16:], 65536)
	binary.LittleEndian.PutUint32(hdr[20:], LinkTypeEthernet)
	eth.Write(hdr)
	writeEthRec := func(etherType uint16, payload []byte, runt bool) {
		frame := make([]byte, ethernetHeaderLen+len(payload))
		binary.BigEndian.PutUint16(frame[12:], etherType)
		copy(frame[ethernetHeaderLen:], payload)
		if runt {
			frame = frame[:8]
		}
		rec := make([]byte, pcapRecordLen)
		binary.LittleEndian.PutUint32(rec[0:], 9)
		binary.LittleEndian.PutUint32(rec[8:], uint32(len(frame)))
		binary.LittleEndian.PutUint32(rec[12:], uint32(len(frame)))
		eth.Write(rec)
		eth.Write(frame)
	}
	writeEthRec(etherTypeIPv4, ipv4Packet(1, 2, 10), false)
	writeEthRec(0x0806, make([]byte, 28), false) // ARP: skipped
	writeEthRec(etherTypeIPv4, nil, true)        // runt: skipped
	writeEthRec(etherTypeIPv4, ipv4Packet(3, 4, 0), false)
	corp["ethernet-mixed"] = eth.Bytes()

	// Big-endian capture, hand-rolled.
	var be bytes.Buffer
	behdr := make([]byte, pcapHeaderLen)
	binary.BigEndian.PutUint32(behdr[0:], pcapMagic)
	binary.BigEndian.PutUint32(behdr[16:], 65536)
	binary.BigEndian.PutUint32(behdr[20:], LinkTypeRaw)
	be.Write(behdr)
	for i := 0; i < 5; i++ {
		body := ipv4Packet(uint32(i), 9, 4)
		rec := make([]byte, pcapRecordLen)
		binary.BigEndian.PutUint32(rec[0:], uint32(i))
		binary.BigEndian.PutUint32(rec[8:], uint32(len(body)))
		binary.BigEndian.PutUint32(rec[12:], uint32(len(body)))
		be.Write(rec)
		be.Write(body)
	}
	corp["big-endian"] = be.Bytes()

	under := bytes.Clone(clean)
	binary.LittleEndian.PutUint32(under[pcapHeaderLen+12:], 1) // origLen < inclLen
	corp["undersized-origlen"] = under

	return corp
}

// TestBytesPcapReaderEquivalence locksteps the mmap-style bytes reader
// against the buffered reader over every corpus and skip configuration:
// same packets, same Pos accounting, same typed errors, same skip counts.
func TestBytesPcapReaderEquivalence(t *testing.T) {
	budgets := []struct {
		name      string
		budget    int
		useBudget bool
	}{
		{"failfast", 0, false},
		{"skip-unlimited", -1, true},
		{"skip-1", 1, true},
		{"skip-2", 2, true},
	}
	for name, raw := range equivalenceCorpora(t) {
		for _, b := range budgets {
			br, err := NewPcapReader(bytes.NewReader(raw))
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			mr, err := NewBytesPcapReader(raw)
			if err != nil {
				t.Fatalf("%s: bytes reader: %v", name, err)
			}
			want := drain(br, b.budget, b.useBudget)
			got := drain(mr, b.budget, b.useBudget)
			compareDrains(t, name+"/"+b.name, want, got)
		}
	}
}

// TestBytesPcapReaderZeroCopy pins the aliasing contract: packet data
// must be sub-slices of the input buffer, not copies.
func TestBytesPcapReaderZeroCopy(t *testing.T) {
	raw := buildPcap(t, []*Packet{{Sec: 1, Data: ipv4Packet(1, 2, 32)}})
	r, err := NewBytesPcapReader(raw)
	if err != nil {
		t.Fatal(err)
	}
	p, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	// Mutating the backing buffer must show through the packet.
	raw[pcapHeaderLen+pcapRecordLen] ^= 0xFF
	if p.Data[0] != 0x45^0xFF {
		t.Error("packet data does not alias the input buffer")
	}
	if cap(p.Data) != len(p.Data) {
		t.Errorf("alias cap %d not clipped to len %d", cap(p.Data), len(p.Data))
	}
}

// TestReadBatchEquivalence checks every reader's NextBatch yields the
// same stream as Next, for batch sizes around the interesting boundaries.
func TestReadBatchEquivalence(t *testing.T) {
	var pkts []*Packet
	for i := 0; i < 37; i++ {
		pkts = append(pkts, &Packet{Sec: uint32(i), Data: ipv4Packet(uint32(i), 1, 8)})
	}
	raw := buildPcap(t, pkts)
	var tshBuf bytes.Buffer
	tw := NewTSHWriter(&tshBuf)
	for _, p := range pkts {
		if err := tw.WritePacket(p); err != nil {
			t.Fatal(err)
		}
	}

	readers := map[string]func() Reader{
		"pcap":  func() Reader { r, _ := NewPcapReader(bytes.NewReader(raw)); return r },
		"bytes": func() Reader { r, _ := NewBytesPcapReader(raw); return r },
		"tsh":   func() Reader { return NewTSHReader(bytes.NewReader(tshBuf.Bytes())) },
		"slice": func() Reader { return NewSliceReader(pkts) },
		"merge": func() Reader {
			a, _ := NewBytesPcapReader(raw)
			return NewMergeReader(a)
		},
	}
	for name, mk := range readers {
		want, err := ReadAll(mk(), 0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, size := range []int{1, 3, 37, 64} {
			r := mk()
			var got []*Packet
			dst := make([]*Packet, size)
			for {
				n, err := ReadBatch(r, dst)
				got = append(got, dst[:n]...)
				if err == io.EOF {
					break
				}
				if err != nil {
					t.Fatalf("%s/batch=%d: %v", name, size, err)
				}
			}
			if len(got) != len(want) {
				t.Fatalf("%s/batch=%d: %d packets, want %d", name, size, len(got), len(want))
			}
			for i := range want {
				if !reflect.DeepEqual(want[i], got[i]) {
					t.Fatalf("%s/batch=%d: packet %d differs", name, size, i)
				}
			}
		}
	}
}

// TestOpenPcapEquivalence checks the file-level entry points (mmap and
// buffered) agree with each other and with reading the raw bytes.
func TestOpenPcapEquivalence(t *testing.T) {
	var pkts []*Packet
	for i := 0; i < 20; i++ {
		pkts = append(pkts, &Packet{Sec: uint32(i), Usec: 3, Data: ipv4Packet(uint32(i), 2, 16)})
	}
	raw := buildPcap(t, pkts)
	path := filepath.Join(t.TempDir(), "t.pcap")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name string
		open func(string) (FileReader, error)
	}{
		{"mmap", OpenPcap},
		{"buffered", OpenPcapBuffered},
	} {
		r, err := tc.open(path)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if r.Total() != int64(len(raw)) {
			t.Errorf("%s: Total = %d, want %d", tc.name, r.Total(), len(raw))
		}
		if lt := r.LinkType(); lt != LinkTypeRaw {
			t.Errorf("%s: LinkType = %d, want %d", tc.name, lt, LinkTypeRaw)
		}
		got, err := ReadAll(r, 0)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if len(got) != len(pkts) {
			t.Fatalf("%s: %d packets, want %d", tc.name, len(got), len(pkts))
		}
		for i := range pkts {
			if !bytes.Equal(got[i].Data, pkts[i].Data) {
				t.Fatalf("%s: packet %d data differs", tc.name, i)
			}
		}
		if r.Pos() != int64(len(raw)) {
			t.Errorf("%s: Pos at EOF = %d, want %d", tc.name, r.Pos(), len(raw))
		}
		if err := r.Close(); err != nil {
			t.Errorf("%s: Close: %v", tc.name, err)
		}
	}
}

// --- merge reader ------------------------------------------------------

func slicesOf(secs ...uint32) []*Packet {
	out := make([]*Packet, len(secs))
	for i, s := range secs {
		out[i] = &Packet{Sec: s, Data: ipv4Packet(s, 1, 0), WireLen: 28}
	}
	return out
}

func TestMergeReaderOrdersByTimestamp(t *testing.T) {
	m := NewMergeReader(
		NewSliceReader(slicesOf(1, 4, 7)),
		NewSliceReader(slicesOf(2, 5, 8)),
		NewSliceReader(slicesOf(3, 6, 9)),
	)
	got, err := ReadAll(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range got {
		if p.Sec != uint32(i+1) {
			t.Fatalf("packet %d Sec = %d, want %d", i, p.Sec, i+1)
		}
	}
	if len(got) != 9 {
		t.Fatalf("merged %d packets, want 9", len(got))
	}
}

func TestMergeReaderUsecAndTieBreak(t *testing.T) {
	a := []*Packet{{Sec: 1, Usec: 500, Data: []byte{1}}, {Sec: 2, Usec: 0, Data: []byte{3}}}
	b := []*Packet{{Sec: 1, Usec: 200, Data: []byte{0}}, {Sec: 2, Usec: 0, Data: []byte{2}}}
	// Shard order (a, b): the Sec=2 tie must go to shard a (lower index).
	m := NewMergeReader(NewSliceReader(a), NewSliceReader(b))
	got, err := ReadAll(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	var ids []byte
	for _, p := range got {
		ids = append(ids, p.Data[0])
	}
	want := []byte{0, 1, 3, 2} // usec orders 0<1; tie at Sec=2 keeps shard a's packet first
	if !bytes.Equal(ids, want) {
		t.Errorf("merge order %v, want %v", ids, want)
	}
}

func TestMergeReaderSingleShardTransparent(t *testing.T) {
	pkts := slicesOf(5, 6, 7)
	m := NewMergeReader(NewSliceReader(pkts))
	got, err := ReadAll(m, 0)
	if err != nil || len(got) != 3 {
		t.Fatalf("ReadAll = %d pkts, %v", len(got), err)
	}
	for i := range pkts {
		if !reflect.DeepEqual(pkts[i], got[i]) {
			t.Fatalf("packet %d differs through single-shard merge", i)
		}
	}
	if m.Pos() != 3 || m.Total() != 3 {
		t.Errorf("Pos/Total = %d/%d, want 3/3", m.Pos(), m.Total())
	}
}

func TestMergeReaderErrorPropagation(t *testing.T) {
	raw := buildPcap(t, slicesOf(1, 2, 3))
	binary.LittleEndian.PutUint32(raw[pcapHeaderLen+8:], 0xFFFFFFFF) // corrupt shard B's first record
	bad, err := NewBytesPcapReader(raw)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMergeReader(NewSliceReader(slicesOf(10, 11)), bad)
	var mr *MalformedRecordError
	if _, err := m.Next(); !errors.As(err, &mr) {
		t.Fatalf("merge Next = %v, want shard's typed malformed error", err)
	}
	// The failing shard is dropped; the healthy shard still drains.
	rest, err := ReadAll(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 2 || rest[0].Sec != 10 || rest[1].Sec != 11 {
		t.Errorf("after shard error, drained %d packets (%v), want shard A's 2", len(rest), rest)
	}
}

func TestMergeReaderPositionedAndSkipped(t *testing.T) {
	rawA := buildPcap(t, slicesOf(1, 3))
	rawB := buildPcap(t, slicesOf(2, 4))
	a, _ := NewBytesPcapReader(rawA)
	b, _ := NewBytesPcapReader(rawB)
	a.SetSkipMalformed(-1)
	m := NewMergeReader(a, b)
	if m.Total() != int64(len(rawA)+len(rawB)) {
		t.Errorf("Total = %d, want %d", m.Total(), len(rawA)+len(rawB))
	}
	if _, err := ReadAll(m, 0); err != nil {
		t.Fatal(err)
	}
	if m.Pos() != m.Total() {
		t.Errorf("Pos at EOF = %d, want Total %d", m.Pos(), m.Total())
	}
	if m.Skipped() != 0 {
		t.Errorf("Skipped = %d, want 0", m.Skipped())
	}
	// A shard without Positioned makes Total unknown but Pos still sums.
	m2 := NewMergeReader(NewSliceReader(slicesOf(1)), opaqueReader{NewSliceReader(slicesOf(2))})
	if m2.Total() != 0 {
		t.Errorf("Total with opaque shard = %d, want 0", m2.Total())
	}
}

// opaqueReader hides everything but Next, to model shards without
// position reporting.
type opaqueReader struct{ r Reader }

func (r opaqueReader) Next() (*Packet, error) { return r.r.Next() }
