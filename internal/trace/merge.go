package trace

import (
	"fmt"
	"io"
)

// MergeReader merges several trace readers into one stream ordered by
// capture timestamp, so a trace sharded across files (tracegen -shards,
// or per-interface captures) replays as a single time-ordered sequence.
//
// Ordering: the head packets of all shards are compared by (Sec, Usec);
// ties go to the lower shard index, which keeps merges deterministic.
// Shards are assumed internally time-ordered — the merge never reorders
// within a shard, it only interleaves across them (a k-way merge, not a
// sort).
//
// Errors are fail-fast in shard-arrival order: a shard's error surfaces
// on the Next call after its preceding packets have been yielded, and the
// failing shard is then dropped so a subsequent Next continues with the
// remaining shards. To tolerate malformed records, enable skip-and-resync
// on the underlying readers before merging.
type MergeReader struct {
	shards []Reader
	heads  []*Packet // nil = needs refill or drained
	errs   []error   // pending error per shard, surfaced once
	done   []bool
	primed bool

	// posBefore[i] is shard i's Seeker state captured just before its
	// buffered head was read. A merge sits one packet ahead of the caller
	// on every shard, so the resumable position of a shard with a pending
	// head is the offset that re-reads that head — not the shard's
	// current position.
	posBefore []int64
}

// NewMergeReader merges the given readers. With a single reader the
// merge is a transparent pass-through (plus Positioned aggregation).
func NewMergeReader(shards ...Reader) *MergeReader {
	return &MergeReader{
		shards:    shards,
		heads:     make([]*Packet, len(shards)),
		errs:      make([]error, len(shards)),
		done:      make([]bool, len(shards)),
		posBefore: make([]int64, len(shards)),
	}
}

// refill pulls the next packet from shard i into heads, recording EOF or
// a pending error.
func (m *MergeReader) refill(i int) {
	if sk, ok := m.shards[i].(Seeker); ok {
		if st := sk.PosState(); len(st) == 1 {
			m.posBefore[i] = st[0]
		}
	}
	p, err := m.shards[i].Next()
	switch {
	case err == io.EOF:
		m.done[i] = true
	case err != nil:
		m.done[i] = true
		m.errs[i] = err
	default:
		m.heads[i] = p
	}
}

// Next implements Reader: the earliest-timestamped head across all
// shards, io.EOF once every shard is drained.
func (m *MergeReader) Next() (*Packet, error) {
	if !m.primed {
		m.primed = true
		for i := range m.shards {
			m.refill(i)
		}
	}
	for i, err := range m.errs {
		if err != nil {
			m.errs[i] = nil
			return nil, err
		}
	}
	best := -1
	for i, p := range m.heads {
		if p == nil {
			continue
		}
		if best < 0 || earlier(p, m.heads[best]) {
			best = i
		}
	}
	if best < 0 {
		return nil, io.EOF
	}
	p := m.heads[best]
	m.heads[best] = nil
	if !m.done[best] {
		m.refill(best)
	}
	return p, nil
}

// earlier reports whether a's timestamp strictly precedes b's. Ties are
// not "earlier", so the linear scan keeps the lowest shard index on equal
// timestamps.
func earlier(a, b *Packet) bool {
	if a.Sec != b.Sec {
		return a.Sec < b.Sec
	}
	return a.Usec < b.Usec
}

// NextBatch implements BatchReader by repeated Next calls; the win from
// batching a merge is on the consumer side (pool channel sync), not here.
func (m *MergeReader) NextBatch(dst []*Packet) (int, error) { return readBatch(m, dst) }

// Pos implements Positioned: the sum of all shard positions. Shards that
// do not report positions contribute zero.
func (m *MergeReader) Pos() int64 {
	var sum int64
	for _, s := range m.shards {
		if p, ok := s.(Positioned); ok {
			sum += p.Pos()
		}
	}
	return sum
}

// Total implements Positioned: the sum of shard totals, or 0 (unknown)
// unless every shard knows its total.
func (m *MergeReader) Total() int64 {
	var sum int64
	for _, s := range m.shards {
		p, ok := s.(Positioned)
		if !ok {
			return 0
		}
		t := p.Total()
		if t <= 0 {
			return 0
		}
		sum += t
	}
	return sum
}

// Progress implements Progresser: the completed fraction over the
// shards that know their size. Unlike Total (which reports unknown
// unless every shard knows its size), a partial fraction is still a
// useful progress signal for sharded replay, so shards with unknown
// totals are simply left out of the ratio.
func (m *MergeReader) Progress() (float64, bool) {
	var pos, total int64
	for _, s := range m.shards {
		p, ok := s.(Positioned)
		if !ok {
			continue
		}
		t := p.Total()
		if t <= 0 {
			continue
		}
		total += t
		pp := p.Pos()
		if pp > t {
			pp = t
		}
		pos += pp
	}
	if total == 0 {
		return 0, false
	}
	return float64(pos) / float64(total), true
}

// PosState implements Seeker: one element per shard, in shard order. It
// returns nil unless every shard is itself single-stream seekable
// (nested merges are not resumable).
func (m *MergeReader) PosState() []int64 {
	out := make([]int64, len(m.shards))
	for i, s := range m.shards {
		sk, ok := s.(Seeker)
		if !ok {
			return nil
		}
		st := sk.PosState()
		if len(st) != 1 {
			return nil
		}
		if m.heads[i] != nil {
			out[i] = m.posBefore[i]
		} else {
			out[i] = st[0]
		}
	}
	return out
}

// SeekTo implements Seeker: every shard is repositioned and the merge's
// head buffers discarded, so the next Next re-primes from the
// checkpointed per-shard offsets.
func (m *MergeReader) SeekTo(state []int64) error {
	if len(state) != len(m.shards) {
		return fmt.Errorf("trace: merge seek state has %d positions for %d shards", len(state), len(m.shards))
	}
	for i, s := range m.shards {
		sk, ok := s.(Seeker)
		if !ok {
			return fmt.Errorf("trace: merge shard %d (%T) is not seekable", i, s)
		}
		if err := sk.SeekTo(state[i : i+1]); err != nil {
			return fmt.Errorf("trace: merge shard %d: %w", i, err)
		}
		m.heads[i] = nil
		m.errs[i] = nil
		m.done[i] = false
		m.posBefore[i] = state[i]
	}
	m.primed = false
	return nil
}

// Skipped sums the skip counts of shards that track them, so callers can
// report skip totals for a sharded replay the same way as for one file.
func (m *MergeReader) Skipped() int {
	n := 0
	for _, s := range m.shards {
		if sk, ok := s.(interface{ Skipped() int }); ok {
			n += sk.Skipped()
		}
	}
	return n
}

// Close closes every shard that is an io.Closer, returning the first
// error. Useful when merging FileReaders from OpenPcap.
func (m *MergeReader) Close() error {
	var first error
	for _, s := range m.shards {
		if c, ok := s.(io.Closer); ok {
			if err := c.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}
