package trace

import "io"

// MergeReader merges several trace readers into one stream ordered by
// capture timestamp, so a trace sharded across files (tracegen -shards,
// or per-interface captures) replays as a single time-ordered sequence.
//
// Ordering: the head packets of all shards are compared by (Sec, Usec);
// ties go to the lower shard index, which keeps merges deterministic.
// Shards are assumed internally time-ordered — the merge never reorders
// within a shard, it only interleaves across them (a k-way merge, not a
// sort).
//
// Errors are fail-fast in shard-arrival order: a shard's error surfaces
// on the Next call after its preceding packets have been yielded, and the
// failing shard is then dropped so a subsequent Next continues with the
// remaining shards. To tolerate malformed records, enable skip-and-resync
// on the underlying readers before merging.
type MergeReader struct {
	shards []Reader
	heads  []*Packet // nil = needs refill or drained
	errs   []error   // pending error per shard, surfaced once
	done   []bool
	primed bool
}

// NewMergeReader merges the given readers. With a single reader the
// merge is a transparent pass-through (plus Positioned aggregation).
func NewMergeReader(shards ...Reader) *MergeReader {
	return &MergeReader{
		shards: shards,
		heads:  make([]*Packet, len(shards)),
		errs:   make([]error, len(shards)),
		done:   make([]bool, len(shards)),
	}
}

// refill pulls the next packet from shard i into heads, recording EOF or
// a pending error.
func (m *MergeReader) refill(i int) {
	p, err := m.shards[i].Next()
	switch {
	case err == io.EOF:
		m.done[i] = true
	case err != nil:
		m.done[i] = true
		m.errs[i] = err
	default:
		m.heads[i] = p
	}
}

// Next implements Reader: the earliest-timestamped head across all
// shards, io.EOF once every shard is drained.
func (m *MergeReader) Next() (*Packet, error) {
	if !m.primed {
		m.primed = true
		for i := range m.shards {
			m.refill(i)
		}
	}
	for i, err := range m.errs {
		if err != nil {
			m.errs[i] = nil
			return nil, err
		}
	}
	best := -1
	for i, p := range m.heads {
		if p == nil {
			continue
		}
		if best < 0 || earlier(p, m.heads[best]) {
			best = i
		}
	}
	if best < 0 {
		return nil, io.EOF
	}
	p := m.heads[best]
	m.heads[best] = nil
	if !m.done[best] {
		m.refill(best)
	}
	return p, nil
}

// earlier reports whether a's timestamp strictly precedes b's. Ties are
// not "earlier", so the linear scan keeps the lowest shard index on equal
// timestamps.
func earlier(a, b *Packet) bool {
	if a.Sec != b.Sec {
		return a.Sec < b.Sec
	}
	return a.Usec < b.Usec
}

// NextBatch implements BatchReader by repeated Next calls; the win from
// batching a merge is on the consumer side (pool channel sync), not here.
func (m *MergeReader) NextBatch(dst []*Packet) (int, error) { return readBatch(m, dst) }

// Pos implements Positioned: the sum of all shard positions. Shards that
// do not report positions contribute zero.
func (m *MergeReader) Pos() int64 {
	var sum int64
	for _, s := range m.shards {
		if p, ok := s.(Positioned); ok {
			sum += p.Pos()
		}
	}
	return sum
}

// Total implements Positioned: the sum of shard totals, or 0 (unknown)
// unless every shard knows its total.
func (m *MergeReader) Total() int64 {
	var sum int64
	for _, s := range m.shards {
		p, ok := s.(Positioned)
		if !ok {
			return 0
		}
		t := p.Total()
		if t <= 0 {
			return 0
		}
		sum += t
	}
	return sum
}

// Skipped sums the skip counts of shards that track them, so callers can
// report skip totals for a sharded replay the same way as for one file.
func (m *MergeReader) Skipped() int {
	n := 0
	for _, s := range m.shards {
		if sk, ok := s.(interface{ Skipped() int }); ok {
			n += sk.Skipped()
		}
	}
	return n
}

// Close closes every shard that is an io.Closer, returning the first
// error. Useful when merging FileReaders from OpenPcap.
func (m *MergeReader) Close() error {
	var first error
	for _, s := range m.shards {
		if c, ok := s.(io.Closer); ok {
			if err := c.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}
