//go:build !unix

package trace

import "os"

// mmapFile reports mmap as unavailable on non-unix platforms; OpenPcap
// falls back to the buffered reader.
func mmapFile(_ *os.File, _ int64) ([]byte, func() error, error) {
	return nil, nil, errMmapUnavailable
}
