//go:build unix

package trace

import (
	"os"
	"syscall"
)

// mmapFile maps size bytes of f read-only, returning the mapping and an
// unmap function. Callers treat any error as "mmap unavailable" and fall
// back to buffered reads.
func mmapFile(f *os.File, size int64) ([]byte, func() error, error) {
	if size <= 0 || int64(int(size)) != size {
		// Empty files cannot be mapped, and a size that overflows int
		// (32-bit platforms) cannot be mapped in one piece.
		return nil, nil, errMmapUnavailable
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
