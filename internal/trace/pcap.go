package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// pcap file-format constants.
const (
	pcapMagic        = 0xA1B2C3D4 // microsecond timestamps, writer-native order
	pcapMagicSwapped = 0xD4C3B2A1
	pcapVersionMajor = 2
	pcapVersionMinor = 4
	pcapHeaderLen    = 24
	pcapRecordLen    = 16

	// LinkTypeRaw means packets begin directly with the IP header
	// (DLT_RAW). This is what the writer emits.
	LinkTypeRaw = 101
	// LinkTypeEthernet packets carry a 14-byte Ethernet header that the
	// reader strips (DLT_EN10MB).
	LinkTypeEthernet = 1

	ethernetHeaderLen = 14
	etherTypeIPv4     = 0x0800
)

// pcapResyncWindow bounds how far past a corrupt record the reader will
// scan for the next plausible record header before giving up.
const pcapResyncWindow = 1 << 20

// pcapBufSize is the buffered-reader size, which also bounds how much
// lookahead resync can use to confirm a candidate record header.
const pcapBufSize = 128 << 10

// PcapReader reads libpcap capture files. Both byte orders are accepted;
// Ethernet and raw-IP link types are supported, with non-IPv4 frames
// skipped silently (matching how header-processing tools consume mixed
// captures).
//
// By default the reader fail-fasts on the first malformed record with a
// *MalformedRecordError. SetSkipMalformed switches it to skip-and-resync:
// corrupt records are skipped (scanning forward for the next plausible
// record header) until the skip budget is exhausted.
type PcapReader struct {
	r        *bufio.Reader
	order    binary.ByteOrder
	linkType uint32
	snapLen  uint32

	off   int64 // bytes consumed from r so far
	total int64 // input size in bytes; 0 when unknown

	skipEnabled bool
	skipBudget  int // max skipped records; <= 0 means unlimited
	skipped     int
}

// NewPcapReader parses the global header and returns a reader positioned
// at the first record.
func NewPcapReader(r io.Reader) (*PcapReader, error) {
	br := bufio.NewReaderSize(r, pcapBufSize)
	var hdr [pcapHeaderLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading pcap header: %w", err)
	}
	var order binary.ByteOrder
	switch binary.LittleEndian.Uint32(hdr[:4]) {
	case pcapMagic:
		order = binary.LittleEndian
	case pcapMagicSwapped:
		order = binary.BigEndian
	default:
		return nil, ErrNotPcap
	}
	p := &PcapReader{
		r:        br,
		order:    order,
		snapLen:  0,
		linkType: 0,
	}
	p.snapLen = order.Uint32(hdr[16:])
	p.linkType = order.Uint32(hdr[20:])
	p.off = pcapHeaderLen
	switch p.linkType {
	case LinkTypeRaw, LinkTypeEthernet:
	default:
		return nil, fmt.Errorf("trace: unsupported pcap link type %d", p.linkType)
	}
	return p, nil
}

// LinkType returns the capture's link type.
func (p *PcapReader) LinkType() uint32 { return p.linkType }

// Pos implements Positioned: the number of input bytes consumed,
// including the global header, skipped bytes, and the partial bytes of
// a truncated trailing record.
func (p *PcapReader) Pos() int64 { return p.off }

// SetTotal records the input size in bytes (for example from the file's
// stat), enabling progress reporting through Total.
func (p *PcapReader) SetTotal(n int64) { p.total = n }

// Total implements Positioned; 0 means unknown.
func (p *PcapReader) Total() int64 { return p.total }

// SetSkipMalformed switches the reader from fail-fast to skip-and-resync:
// malformed records no longer abort the read; the reader scans forward for
// the next plausible record header instead. At most budget records are
// skipped (budget <= 0 means unlimited); once the budget is exhausted the
// next malformed record is returned as a *MalformedRecordError again.
func (p *PcapReader) SetSkipMalformed(budget int) {
	p.skipEnabled = true
	p.skipBudget = budget
}

// Skipped returns how many malformed records were skipped so far.
func (p *PcapReader) Skipped() int { return p.skipped }

// consumeSkip takes one unit of skip budget; false means the policy (or
// budget) requires the malformed record to be surfaced as an error.
func (p *PcapReader) consumeSkip() bool {
	if !p.skipEnabled || (p.skipBudget > 0 && p.skipped >= p.skipBudget) {
		return false
	}
	p.skipped++
	return true
}

// recHeaderProblem validates a record header's lengths, returning a
// non-empty reason when the record cannot be read.
func (p *PcapReader) recHeaderProblem(rec []byte) string {
	inclLen := p.order.Uint32(rec[8:])
	if inclLen > 1<<24 {
		return fmt.Sprintf("pcap record length %d exceeds the maximum supported length %d", inclLen, 1<<24)
	}
	if p.snapLen > 0 && inclLen > p.snapLen {
		return fmt.Sprintf("pcap record length %d exceeds snap length %d", inclLen, p.snapLen)
	}
	return ""
}

// plausibleHeader is the resync heuristic: a 16-byte window is accepted as
// a record header when its lengths are consistent and the microsecond
// field is in range. Stricter than recHeaderProblem on purpose — when
// scanning a desynchronized byte stream, false positives cost far more
// than skipping to the next real record.
func (p *PcapReader) plausibleHeader(rec []byte) bool {
	usec := p.order.Uint32(rec[4:])
	incl := p.order.Uint32(rec[8:])
	orig := p.order.Uint32(rec[12:])
	limit := uint32(1 << 24)
	if p.snapLen > 0 && p.snapLen < limit {
		limit = p.snapLen
	}
	return usec < 1_000_000 && incl > 0 && incl <= limit && orig >= incl && orig <= 1<<24
}

// confirmCandidate strengthens a plausible resync window by peeking at
// where the candidate's body would end: either the stream ends exactly
// there (a valid final record) or another plausible header follows. A
// shifted window over real traffic can alias into a plausible-looking
// header; requiring the following record to line up too rejects nearly
// all such aliases. The cost of that strictness: a genuine record whose
// immediate successor is also corrupt fails confirmation and is
// sacrificed to the same resync scan. Skip-and-resync is best-effort
// recovery, and losing a record adjacent to corruption is the cheaper
// failure mode than locking onto an alias mid-body and desynchronizing
// the rest of the stream.
func (p *PcapReader) confirmCandidate(w []byte) bool {
	incl := int(p.order.Uint32(w[8:]))
	peek, err := p.r.Peek(incl + pcapRecordLen)
	if len(peek) >= incl+pcapRecordLen {
		return p.plausibleHeader(peek[incl:])
	}
	if err == bufio.ErrBufferFull {
		// Body longer than the lookahead buffer: accept unconfirmed.
		return true
	}
	// Stream ends before incl+header bytes: valid only as the exact
	// final record.
	return len(peek) == incl
}

// resync slides a one-byte-at-a-time window over the stream until it
// finds a confirmed plausible record header, returning it. io.EOF means
// the stream ended (trailing corruption); other errors mean resync
// failed.
func (p *PcapReader) resync(rec [pcapRecordLen]byte) ([pcapRecordLen]byte, error) {
	w := rec
	for scanned := 0; scanned < pcapResyncWindow; scanned++ {
		var b [1]byte
		if _, err := io.ReadFull(p.r, b[:]); err != nil {
			if err == io.EOF {
				return w, io.EOF
			}
			return w, fmt.Errorf("trace: resyncing pcap stream: %w", err)
		}
		copy(w[:], w[1:])
		w[pcapRecordLen-1] = b[0]
		p.off++
		if p.plausibleHeader(w[:]) && p.confirmCandidate(w[:]) {
			return w, nil
		}
	}
	return w, fmt.Errorf("trace: no plausible pcap record header within %d bytes of corrupt record: %w",
		pcapResyncWindow, ErrMalformedRecord)
}

// Next returns the next IPv4 packet, skipping non-IP frames. It returns
// io.EOF at the end of the file.
func (p *PcapReader) Next() (*Packet, error) {
	for {
		recOff := p.off
		var rec [pcapRecordLen]byte
		if n, err := io.ReadFull(p.r, rec[:]); err != nil {
			if err == io.EOF {
				return nil, io.EOF
			}
			if err == io.ErrUnexpectedEOF {
				// Truncated trailing record header: there is nothing left
				// to resync into, so skip mode ends the trace here. The
				// partial bytes were consumed, so Pos advances past them.
				p.off += int64(n)
				if p.consumeSkip() {
					return nil, io.EOF
				}
				return nil, &MalformedRecordError{Format: FormatPcap, Offset: recOff,
					Reason: "truncated record header", Err: err}
			}
			return nil, fmt.Errorf("trace: reading pcap record header: %w", err)
		}
		p.off += pcapRecordLen
		if reason := p.recHeaderProblem(rec[:]); reason != "" {
			if !p.consumeSkip() {
				return nil, &MalformedRecordError{Format: FormatPcap, Offset: recOff, Reason: reason}
			}
			nrec, err := p.resync(rec)
			if err != nil {
				if err == io.EOF {
					return nil, io.EOF
				}
				return nil, err
			}
			rec = nrec
		}
		sec := p.order.Uint32(rec[0:])
		usec := p.order.Uint32(rec[4:])
		inclLen := p.order.Uint32(rec[8:])
		origLen := p.order.Uint32(rec[12:])
		data := make([]byte, inclLen)
		if n, err := io.ReadFull(p.r, data); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				// Truncated record body at the end of the stream. The
				// partial bytes were consumed, so Pos advances past them.
				p.off += int64(n)
				if p.consumeSkip() {
					return nil, io.EOF
				}
				return nil, &MalformedRecordError{Format: FormatPcap, Offset: recOff,
					Reason: fmt.Sprintf("record body truncated at %d of %d bytes", n, inclLen),
					Err:    io.ErrUnexpectedEOF}
			}
			return nil, fmt.Errorf("trace: reading pcap record body: %w", err)
		}
		p.off += int64(inclLen)
		wire := int(origLen)
		if p.linkType == LinkTypeEthernet {
			if len(data) < ethernetHeaderLen {
				continue // runt frame
			}
			etherType := binary.BigEndian.Uint16(data[12:])
			if etherType != etherTypeIPv4 {
				continue // not IPv4; skip
			}
			data = data[ethernetHeaderLen:]
			wire -= ethernetHeaderLen
		}
		if len(data) == 0 {
			continue
		}
		// A malformed capture can record an origLen shorter than the
		// bytes present (or, for Ethernet, shorter than the stripped
		// header, which would go negative above); clamp so WireLen keeps
		// its >= len(Data) invariant.
		if wire < len(data) {
			wire = len(data)
		}
		return &Packet{Sec: sec, Usec: usec, Data: data, WireLen: wire}, nil
	}
}

// PcapWriter writes libpcap capture files with raw-IP framing, so records
// begin at the layer-3 header exactly as PacketBench applications see them.
type PcapWriter struct {
	w io.Writer
}

// NewPcapWriter writes the global header and returns the writer.
func NewPcapWriter(w io.Writer) (*PcapWriter, error) {
	var hdr [pcapHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:], pcapMagic)
	binary.LittleEndian.PutUint16(hdr[4:], pcapVersionMajor)
	binary.LittleEndian.PutUint16(hdr[6:], pcapVersionMinor)
	// thiszone (8:12) and sigfigs (12:16) stay zero.
	binary.LittleEndian.PutUint32(hdr[16:], 1<<16) // snaplen
	binary.LittleEndian.PutUint32(hdr[20:], LinkTypeRaw)
	if _, err := w.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: writing pcap header: %w", err)
	}
	return &PcapWriter{w: w}, nil
}

// WritePacket appends one record.
func (p *PcapWriter) WritePacket(pkt *Packet) error {
	var rec [pcapRecordLen]byte
	binary.LittleEndian.PutUint32(rec[0:], pkt.Sec)
	binary.LittleEndian.PutUint32(rec[4:], pkt.Usec)
	binary.LittleEndian.PutUint32(rec[8:], uint32(len(pkt.Data)))
	wire := pkt.WireLen
	if wire < len(pkt.Data) {
		wire = len(pkt.Data)
	}
	binary.LittleEndian.PutUint32(rec[12:], uint32(wire))
	if _, err := p.w.Write(rec[:]); err != nil {
		return fmt.Errorf("trace: writing pcap record: %w", err)
	}
	if _, err := p.w.Write(pkt.Data); err != nil {
		return fmt.Errorf("trace: writing pcap record body: %w", err)
	}
	return nil
}
