package trace

import (
	"encoding/binary"
	"fmt"
	"io"
)

// pcap file-format constants.
const (
	pcapMagic        = 0xA1B2C3D4 // microsecond timestamps, writer-native order
	pcapMagicSwapped = 0xD4C3B2A1
	pcapVersionMajor = 2
	pcapVersionMinor = 4
	pcapHeaderLen    = 24
	pcapRecordLen    = 16

	// LinkTypeRaw means packets begin directly with the IP header
	// (DLT_RAW). This is what the writer emits.
	LinkTypeRaw = 101
	// LinkTypeEthernet packets carry a 14-byte Ethernet header that the
	// reader strips (DLT_EN10MB).
	LinkTypeEthernet = 1

	ethernetHeaderLen = 14
	etherTypeIPv4     = 0x0800
)

// PcapReader reads libpcap capture files. Both byte orders are accepted;
// Ethernet and raw-IP link types are supported, with non-IPv4 frames
// skipped silently (matching how header-processing tools consume mixed
// captures).
type PcapReader struct {
	r        io.Reader
	order    binary.ByteOrder
	linkType uint32
	snapLen  uint32
}

// NewPcapReader parses the global header and returns a reader positioned
// at the first record.
func NewPcapReader(r io.Reader) (*PcapReader, error) {
	var hdr [pcapHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading pcap header: %w", err)
	}
	var order binary.ByteOrder
	switch binary.LittleEndian.Uint32(hdr[:4]) {
	case pcapMagic:
		order = binary.LittleEndian
	case pcapMagicSwapped:
		order = binary.BigEndian
	default:
		return nil, ErrNotPcap
	}
	p := &PcapReader{
		r:        r,
		order:    order,
		snapLen:  0,
		linkType: 0,
	}
	p.snapLen = order.Uint32(hdr[16:])
	p.linkType = order.Uint32(hdr[20:])
	switch p.linkType {
	case LinkTypeRaw, LinkTypeEthernet:
	default:
		return nil, fmt.Errorf("trace: unsupported pcap link type %d", p.linkType)
	}
	return p, nil
}

// LinkType returns the capture's link type.
func (p *PcapReader) LinkType() uint32 { return p.linkType }

// Next returns the next IPv4 packet, skipping non-IP frames. It returns
// io.EOF at the end of the file.
func (p *PcapReader) Next() (*Packet, error) {
	for {
		var rec [pcapRecordLen]byte
		if _, err := io.ReadFull(p.r, rec[:]); err != nil {
			if err == io.EOF {
				return nil, io.EOF
			}
			return nil, fmt.Errorf("trace: reading pcap record header: %w", err)
		}
		sec := p.order.Uint32(rec[0:])
		usec := p.order.Uint32(rec[4:])
		inclLen := p.order.Uint32(rec[8:])
		origLen := p.order.Uint32(rec[12:])
		if inclLen > 1<<24 {
			return nil, fmt.Errorf("trace: pcap record length %d exceeds the maximum supported length %d", inclLen, 1<<24)
		}
		if p.snapLen > 0 && inclLen > p.snapLen {
			return nil, fmt.Errorf("trace: pcap record length %d exceeds snap length %d", inclLen, p.snapLen)
		}
		data := make([]byte, inclLen)
		if _, err := io.ReadFull(p.r, data); err != nil {
			return nil, fmt.Errorf("trace: reading pcap record body: %w", err)
		}
		wire := int(origLen)
		if p.linkType == LinkTypeEthernet {
			if len(data) < ethernetHeaderLen {
				continue // runt frame
			}
			etherType := binary.BigEndian.Uint16(data[12:])
			if etherType != etherTypeIPv4 {
				continue // not IPv4; skip
			}
			data = data[ethernetHeaderLen:]
			wire -= ethernetHeaderLen
		}
		if len(data) == 0 {
			continue
		}
		// A malformed capture can record an origLen shorter than the
		// bytes present (or, for Ethernet, shorter than the stripped
		// header, which would go negative above); clamp so WireLen keeps
		// its >= len(Data) invariant.
		if wire < len(data) {
			wire = len(data)
		}
		return &Packet{Sec: sec, Usec: usec, Data: data, WireLen: wire}, nil
	}
}

// PcapWriter writes libpcap capture files with raw-IP framing, so records
// begin at the layer-3 header exactly as PacketBench applications see them.
type PcapWriter struct {
	w io.Writer
}

// NewPcapWriter writes the global header and returns the writer.
func NewPcapWriter(w io.Writer) (*PcapWriter, error) {
	var hdr [pcapHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:], pcapMagic)
	binary.LittleEndian.PutUint16(hdr[4:], pcapVersionMajor)
	binary.LittleEndian.PutUint16(hdr[6:], pcapVersionMinor)
	// thiszone (8:12) and sigfigs (12:16) stay zero.
	binary.LittleEndian.PutUint32(hdr[16:], 1<<16) // snaplen
	binary.LittleEndian.PutUint32(hdr[20:], LinkTypeRaw)
	if _, err := w.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: writing pcap header: %w", err)
	}
	return &PcapWriter{w: w}, nil
}

// WritePacket appends one record.
func (p *PcapWriter) WritePacket(pkt *Packet) error {
	var rec [pcapRecordLen]byte
	binary.LittleEndian.PutUint32(rec[0:], pkt.Sec)
	binary.LittleEndian.PutUint32(rec[4:], pkt.Usec)
	binary.LittleEndian.PutUint32(rec[8:], uint32(len(pkt.Data)))
	wire := pkt.WireLen
	if wire < len(pkt.Data) {
		wire = len(pkt.Data)
	}
	binary.LittleEndian.PutUint32(rec[12:], uint32(wire))
	if _, err := p.w.Write(rec[:]); err != nil {
		return fmt.Errorf("trace: writing pcap record: %w", err)
	}
	if _, err := p.w.Write(pkt.Data); err != nil {
		return fmt.Errorf("trace: writing pcap record body: %w", err)
	}
	return nil
}
