package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// pcap file-format constants.
const (
	pcapMagic        = 0xA1B2C3D4 // microsecond timestamps, writer-native order
	pcapMagicSwapped = 0xD4C3B2A1
	pcapVersionMajor = 2
	pcapVersionMinor = 4
	pcapHeaderLen    = 24
	pcapRecordLen    = 16

	// pcapMaxRecordLen is the largest record body either pcap reader
	// accepts, and the snap length the writer declares; keeping the two
	// equal is what guarantees every written record reads back.
	pcapMaxRecordLen = 1 << 24

	// LinkTypeRaw means packets begin directly with the IP header
	// (DLT_RAW). This is what the writer emits.
	LinkTypeRaw = 101
	// LinkTypeEthernet packets carry a 14-byte Ethernet header that the
	// reader strips (DLT_EN10MB).
	LinkTypeEthernet = 1

	ethernetHeaderLen = 14
	etherTypeIPv4     = 0x0800
)

// pcapResyncWindow bounds how far past a corrupt record the reader will
// scan for the next plausible record header before giving up.
const pcapResyncWindow = 1 << 20

// pcapBufSize is the buffered-reader size, which also bounds how much
// lookahead resync can use to confirm a candidate record header.
const pcapBufSize = 128 << 10

// pcapMeta is the parsed global header shared by the buffered and
// memory-mapped pcap readers; record-header validation lives here so
// both readers apply identical rules and emit identical diagnostics.
type pcapMeta struct {
	order    binary.ByteOrder
	linkType uint32
	snapLen  uint32
}

// parsePcapMeta validates a 24-byte global header.
func parsePcapMeta(hdr []byte) (pcapMeta, error) {
	var m pcapMeta
	switch binary.LittleEndian.Uint32(hdr[:4]) {
	case pcapMagic:
		m.order = binary.LittleEndian
	case pcapMagicSwapped:
		m.order = binary.BigEndian
	default:
		return m, ErrNotPcap
	}
	m.snapLen = m.order.Uint32(hdr[16:])
	m.linkType = m.order.Uint32(hdr[20:])
	switch m.linkType {
	case LinkTypeRaw, LinkTypeEthernet:
	default:
		return m, fmt.Errorf("trace: unsupported pcap link type %d", m.linkType)
	}
	return m, nil
}

// recHeaderProblem validates a record header's lengths, returning a
// non-empty reason when the record cannot be read.
func (m *pcapMeta) recHeaderProblem(rec []byte) string {
	inclLen := m.order.Uint32(rec[8:])
	if inclLen > pcapMaxRecordLen {
		return fmt.Sprintf("pcap record length %d exceeds the maximum supported length %d", inclLen, pcapMaxRecordLen)
	}
	if m.snapLen > 0 && inclLen > m.snapLen {
		return fmt.Sprintf("pcap record length %d exceeds snap length %d", inclLen, m.snapLen)
	}
	if origLen := m.order.Uint32(rec[12:]); origLen < inclLen {
		return fmt.Sprintf("pcap record original length %d below captured length %d", origLen, inclLen)
	}
	return ""
}

// plausibleHeader is the resync heuristic: a 16-byte window is accepted as
// a record header when its lengths are consistent and the microsecond
// field is in range. Stricter than recHeaderProblem on purpose — when
// scanning a desynchronized byte stream, false positives cost far more
// than skipping to the next real record.
func (m *pcapMeta) plausibleHeader(rec []byte) bool {
	usec := m.order.Uint32(rec[4:])
	incl := m.order.Uint32(rec[8:])
	orig := m.order.Uint32(rec[12:])
	limit := uint32(pcapMaxRecordLen)
	if m.snapLen > 0 && m.snapLen < limit {
		limit = m.snapLen
	}
	return usec < 1_000_000 && incl > 0 && incl <= limit && orig >= incl && orig <= pcapMaxRecordLen
}

// The malformed-record error constructors below are shared by the
// buffered and memory-mapped readers so the two emit byte-identical
// diagnostics for the same corruption.

func pcapTruncatedHeaderErr(off int64) *MalformedRecordError {
	return &MalformedRecordError{Format: FormatPcap, Offset: off,
		Reason: "truncated record header", Err: io.ErrUnexpectedEOF}
}

func pcapTruncatedBodyErr(off int64, n, inclLen int) *MalformedRecordError {
	return &MalformedRecordError{Format: FormatPcap, Offset: off,
		Reason: fmt.Sprintf("record body truncated at %d of %d bytes", n, inclLen),
		Err:    io.ErrUnexpectedEOF}
}

func pcapResyncExhaustedErr(off int64) *MalformedRecordError {
	return &MalformedRecordError{Format: FormatPcap, Offset: off,
		Reason: fmt.Sprintf("no plausible record header within %d bytes of corrupt record", pcapResyncWindow)}
}

// PcapReader reads libpcap capture files. Both byte orders are accepted;
// Ethernet and raw-IP link types are supported, with non-IPv4 frames
// skipped silently (matching how header-processing tools consume mixed
// captures).
//
// By default the reader fail-fasts on the first malformed record with a
// *MalformedRecordError. SetSkipMalformed switches it to skip-and-resync:
// corrupt records are skipped (scanning forward for the next plausible
// record header) until the skip budget is exhausted.
type PcapReader struct {
	pcapMeta
	skipState
	r   *bufio.Reader
	src io.Reader // unbuffered source, retained so SeekTo can reposition it

	off   int64 // bytes consumed from r so far
	total int64 // input size in bytes; 0 when unknown
}

// NewPcapReader parses the global header and returns a reader positioned
// at the first record.
func NewPcapReader(r io.Reader) (*PcapReader, error) {
	br := bufio.NewReaderSize(r, pcapBufSize)
	var hdr [pcapHeaderLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading pcap header: %w", err)
	}
	meta, err := parsePcapMeta(hdr[:])
	if err != nil {
		return nil, err
	}
	return &PcapReader{pcapMeta: meta, r: br, src: r, off: pcapHeaderLen}, nil
}

// LinkType returns the capture's link type.
func (p *PcapReader) LinkType() uint32 { return p.linkType }

// Pos implements Positioned: the number of input bytes consumed,
// including the global header, skipped bytes, and the partial bytes of
// a truncated trailing record.
func (p *PcapReader) Pos() int64 { return p.off }

// SetTotal records the input size in bytes (for example from the file's
// stat), enabling progress reporting through Total.
func (p *PcapReader) SetTotal(n int64) { p.total = n }

// Total implements Positioned; 0 means unknown.
func (p *PcapReader) Total() int64 { return p.total }

// SetSkipMalformed switches the reader from fail-fast to skip-and-resync:
// malformed records no longer abort the read; the reader scans forward for
// the next plausible record header instead. At most budget records are
// skipped (budget <= 0 means unlimited); once the budget is exhausted the
// next malformed record is returned as a *MalformedRecordError again.
func (p *PcapReader) SetSkipMalformed(budget int) { p.enableSkip(budget) }

// confirmCandidate strengthens a plausible resync window by peeking at
// where the candidate's body would end: either the stream ends exactly
// there (a valid final record) or another plausible header follows. A
// shifted window over real traffic can alias into a plausible-looking
// header; requiring the following record to line up too rejects nearly
// all such aliases. The cost of that strictness: a genuine record whose
// immediate successor is also corrupt fails confirmation and is
// sacrificed to the same resync scan, and a genuine record whose body
// exceeds the lookahead buffer can never be confirmed and is likewise
// sacrificed. Skip-and-resync is best-effort recovery, and losing a
// record adjacent to corruption is the cheaper failure mode than locking
// onto an alias mid-body and desynchronizing the rest of the stream.
func (p *PcapReader) confirmCandidate(w []byte) bool {
	incl := int(p.order.Uint32(w[8:]))
	peek, err := p.r.Peek(incl + pcapRecordLen)
	if len(peek) >= incl+pcapRecordLen {
		return p.plausibleHeader(peek[incl:])
	}
	if err == bufio.ErrBufferFull {
		// Body longer than the lookahead buffer: unconfirmable, reject.
		return false
	}
	// Stream ends before incl+header bytes: valid only as the exact
	// final record.
	return len(peek) == incl
}

// resync slides a one-byte-at-a-time window over the stream until it
// finds a confirmed plausible record header, returning it. io.EOF means
// the stream ended (trailing corruption). An exhausted scan window is a
// typed *MalformedRecordError carrying recOff, the offset of the corrupt
// record that triggered the scan, so callers matching with errors.As see
// the same Offset/Reason shape as every other malformed-record path.
func (p *PcapReader) resync(rec [pcapRecordLen]byte, recOff int64) ([pcapRecordLen]byte, error) {
	w := rec
	for scanned := 0; scanned < pcapResyncWindow; scanned++ {
		var b [1]byte
		if _, err := io.ReadFull(p.r, b[:]); err != nil {
			if err == io.EOF {
				return w, io.EOF
			}
			return w, fmt.Errorf("trace: resyncing pcap stream: %w", err)
		}
		copy(w[:], w[1:])
		w[pcapRecordLen-1] = b[0]
		p.off++
		if p.plausibleHeader(w[:]) && p.confirmCandidate(w[:]) {
			return w, nil
		}
	}
	return w, pcapResyncExhaustedErr(recOff)
}

// Next returns the next IPv4 packet, skipping non-IP frames. It returns
// io.EOF at the end of the file.
func (p *PcapReader) Next() (*Packet, error) {
	for {
		recOff := p.off
		var rec [pcapRecordLen]byte
		if n, err := io.ReadFull(p.r, rec[:]); err != nil {
			if err == io.EOF {
				return nil, io.EOF
			}
			if err == io.ErrUnexpectedEOF {
				// Truncated trailing record header: there is nothing left
				// to resync into, so skip mode ends the trace here. The
				// partial bytes were consumed, so Pos advances past them.
				p.off += int64(n)
				if p.consumeSkip() {
					return nil, io.EOF
				}
				return nil, pcapTruncatedHeaderErr(recOff)
			}
			return nil, fmt.Errorf("trace: reading pcap record header: %w", err)
		}
		p.off += pcapRecordLen
		if reason := p.recHeaderProblem(rec[:]); reason != "" {
			if !p.consumeSkip() {
				return nil, &MalformedRecordError{Format: FormatPcap, Offset: recOff, Reason: reason}
			}
			nrec, err := p.resync(rec, recOff)
			if err != nil {
				if err == io.EOF {
					return nil, io.EOF
				}
				return nil, err
			}
			rec = nrec
			// The resynced header replaced the corrupt one: recompute the
			// record start so a failure in the *resynced* record's body is
			// reported at its own offset, not the corrupt record's.
			recOff = p.off - pcapRecordLen
		}
		sec := p.order.Uint32(rec[0:])
		usec := p.order.Uint32(rec[4:])
		inclLen := p.order.Uint32(rec[8:])
		origLen := p.order.Uint32(rec[12:])
		data := make([]byte, inclLen)
		if n, err := io.ReadFull(p.r, data); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				// Truncated record body at the end of the stream. The
				// partial bytes were consumed, so Pos advances past them.
				p.off += int64(n)
				if p.consumeSkip() {
					return nil, io.EOF
				}
				return nil, pcapTruncatedBodyErr(recOff, n, int(inclLen))
			}
			return nil, fmt.Errorf("trace: reading pcap record body: %w", err)
		}
		p.off += int64(inclLen)
		pkt, ok := p.finishPacket(sec, usec, origLen, data)
		if !ok {
			continue
		}
		return pkt, nil
	}
}

// NextBatch implements BatchReader by repeated Next calls; batching a
// buffered reader amortizes only the caller's per-packet overhead (the
// pool's channel synchronization), not the reads themselves.
func (p *PcapReader) NextBatch(dst []*Packet) (int, error) { return readBatch(p, dst) }

// finishPacket applies link-layer stripping and the WireLen invariant to
// a decoded record, shared by the buffered and memory-mapped readers.
// ok is false when the frame is not an IPv4 packet and must be skipped.
func (m *pcapMeta) finishPacket(sec, usec, origLen uint32, data []byte) (*Packet, bool) {
	wire := int(origLen)
	if m.linkType == LinkTypeEthernet {
		if len(data) < ethernetHeaderLen {
			return nil, false // runt frame
		}
		etherType := binary.BigEndian.Uint16(data[12:])
		if etherType != etherTypeIPv4 {
			return nil, false // not IPv4; skip
		}
		data = data[ethernetHeaderLen:]
		wire -= ethernetHeaderLen
	}
	if len(data) == 0 {
		return nil, false
	}
	// A malformed capture can record an origLen shorter than the stripped
	// Ethernet header (which would go negative above); clamp so WireLen
	// keeps its >= len(Data) invariant.
	if wire < len(data) {
		wire = len(data)
	}
	return &Packet{Sec: sec, Usec: usec, Data: data, WireLen: wire}, true
}

// PcapWriter writes libpcap capture files with raw-IP framing, so records
// begin at the layer-3 header exactly as PacketBench applications see them.
type PcapWriter struct {
	w io.Writer
}

// NewPcapWriter writes the global header and returns the writer.
func NewPcapWriter(w io.Writer) (*PcapWriter, error) {
	var hdr [pcapHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:], pcapMagic)
	binary.LittleEndian.PutUint16(hdr[4:], pcapVersionMajor)
	binary.LittleEndian.PutUint16(hdr[6:], pcapVersionMinor)
	// thiszone (8:12) and sigfigs (12:16) stay zero.
	// The declared snap length is the reader's maximum supported record
	// length: WritePacket accepts packets up to that size, so declaring
	// anything smaller would make our own reader reject our own records.
	binary.LittleEndian.PutUint32(hdr[16:], pcapMaxRecordLen)
	binary.LittleEndian.PutUint32(hdr[20:], LinkTypeRaw)
	if _, err := w.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: writing pcap header: %w", err)
	}
	return &PcapWriter{w: w}, nil
}

// WritePacket appends one record. Packets longer than the declared snap
// length (the maximum record length the readers support) are rejected
// rather than silently writing a capture that cannot be read back.
func (p *PcapWriter) WritePacket(pkt *Packet) error {
	if len(pkt.Data) > pcapMaxRecordLen {
		return fmt.Errorf("trace: packet of %d bytes exceeds the pcap snap length %d", len(pkt.Data), pcapMaxRecordLen)
	}
	var rec [pcapRecordLen]byte
	binary.LittleEndian.PutUint32(rec[0:], pkt.Sec)
	binary.LittleEndian.PutUint32(rec[4:], pkt.Usec)
	binary.LittleEndian.PutUint32(rec[8:], uint32(len(pkt.Data)))
	wire := pkt.WireLen
	if wire < len(pkt.Data) {
		wire = len(pkt.Data)
	}
	binary.LittleEndian.PutUint32(rec[12:], uint32(wire))
	if _, err := p.w.Write(rec[:]); err != nil {
		return fmt.Errorf("trace: writing pcap record: %w", err)
	}
	if _, err := p.w.Write(pkt.Data); err != nil {
		return fmt.Errorf("trace: writing pcap record body: %w", err)
	}
	return nil
}
