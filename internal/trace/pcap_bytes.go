package trace

import (
	"fmt"
	"io"
)

// BytesPcapReader reads a pcap capture held entirely in memory — in
// practice a read-only mmap of the trace file (see OpenPcap). Packet.Data
// values are sub-slices of the backing buffer, not copies: the reader
// performs zero allocations per record beyond the Packet header itself.
// That aliasing is safe for PacketBench because the VM copies packet
// bytes into simulated packet memory at load time and never writes
// through the input slice; callers holding packets must keep the buffer
// (the mapping) alive and unmodified while any packet is in use.
//
// Behavior is bit-identical to PcapReader over the same bytes: same
// packets, same Pos accounting, same typed errors with the same offsets
// and reasons, and the same skip-and-resync decisions — including
// PcapReader's lookahead cap during resync confirmation, which this
// reader deliberately mimics even though it could see further. The
// equivalence tests in pcap_bytes_test.go and the differential fuzz
// target hold the two readers to that contract.
type BytesPcapReader struct {
	pcapMeta
	skipState
	buf []byte
	off int64
}

// NewBytesPcapReader parses the global header and returns a reader
// positioned at the first record. The buffer is retained and aliased by
// every returned packet.
func NewBytesPcapReader(buf []byte) (*BytesPcapReader, error) {
	if len(buf) < pcapHeaderLen {
		err := io.ErrUnexpectedEOF
		if len(buf) == 0 {
			err = io.EOF
		}
		return nil, fmt.Errorf("trace: reading pcap header: %w", err)
	}
	meta, err := parsePcapMeta(buf[:pcapHeaderLen])
	if err != nil {
		return nil, err
	}
	return &BytesPcapReader{pcapMeta: meta, buf: buf, off: pcapHeaderLen}, nil
}

// LinkType returns the capture's link type.
func (p *BytesPcapReader) LinkType() uint32 { return p.linkType }

// Pos implements Positioned with the same accounting as PcapReader.
func (p *BytesPcapReader) Pos() int64 { return p.off }

// Total implements Positioned; an in-memory capture always knows its size.
func (p *BytesPcapReader) Total() int64 { return int64(len(p.buf)) }

// SetSkipMalformed switches the reader from fail-fast to skip-and-resync,
// with the same budget semantics as PcapReader.SetSkipMalformed.
func (p *BytesPcapReader) SetSkipMalformed(budget int) { p.enableSkip(budget) }

// confirmCandidate mirrors PcapReader.confirmCandidate, including its
// lookahead cap: the buffered reader can only peek pcapBufSize bytes, so
// a candidate whose body extends past that is unconfirmable and rejected
// (bufio.ErrBufferFull there). This reader could inspect the whole
// buffer, but doing so would make the two readers resync differently on
// the same input, breaking the equivalence contract.
func (p *BytesPcapReader) confirmCandidate(w []byte) bool {
	incl := int(p.order.Uint32(w[8:]))
	rest := p.buf[p.off:]
	if n := incl + pcapRecordLen; n <= pcapBufSize {
		if len(rest) >= n {
			return p.plausibleHeader(rest[incl:n])
		}
	} else if len(rest) >= pcapBufSize {
		return false // lookahead cap: unconfirmable, reject
	}
	// Input ends before incl+header bytes: valid only as the exact final
	// record.
	return len(rest) == incl
}

// resync mirrors PcapReader.resync over the in-memory buffer.
func (p *BytesPcapReader) resync(rec []byte, recOff int64) ([]byte, error) {
	w := make([]byte, pcapRecordLen)
	copy(w, rec)
	for scanned := 0; scanned < pcapResyncWindow; scanned++ {
		if p.off >= int64(len(p.buf)) {
			return w, io.EOF
		}
		copy(w, w[1:])
		w[pcapRecordLen-1] = p.buf[p.off]
		p.off++
		if p.plausibleHeader(w) && p.confirmCandidate(w) {
			return w, nil
		}
	}
	return w, pcapResyncExhaustedErr(recOff)
}

// Next returns the next IPv4 packet, skipping non-IP frames. It returns
// io.EOF at the end of the capture. The returned packet's Data aliases
// the backing buffer.
func (p *BytesPcapReader) Next() (*Packet, error) {
	for {
		recOff := p.off
		rest := p.buf[p.off:]
		if len(rest) == 0 {
			return nil, io.EOF
		}
		if len(rest) < pcapRecordLen {
			// Truncated trailing record header; consume the partial bytes
			// so Pos advances past them, matching PcapReader.
			p.off = int64(len(p.buf))
			if p.consumeSkip() {
				return nil, io.EOF
			}
			return nil, pcapTruncatedHeaderErr(recOff)
		}
		rec := rest[:pcapRecordLen]
		p.off += pcapRecordLen
		if reason := p.recHeaderProblem(rec); reason != "" {
			if !p.consumeSkip() {
				return nil, &MalformedRecordError{Format: FormatPcap, Offset: recOff, Reason: reason}
			}
			nrec, err := p.resync(rec, recOff)
			if err != nil {
				if err == io.EOF {
					return nil, io.EOF
				}
				return nil, err
			}
			rec = nrec
			// As in PcapReader: the resynced record starts pcapRecordLen
			// bytes back from the current position.
			recOff = p.off - pcapRecordLen
		}
		sec := p.order.Uint32(rec[0:])
		usec := p.order.Uint32(rec[4:])
		inclLen := p.order.Uint32(rec[8:])
		origLen := p.order.Uint32(rec[12:])
		body := p.buf[p.off:]
		if len(body) < int(inclLen) {
			n := len(body)
			p.off = int64(len(p.buf))
			if p.consumeSkip() {
				return nil, io.EOF
			}
			return nil, pcapTruncatedBodyErr(recOff, n, int(inclLen))
		}
		data := body[:inclLen:inclLen] // zero-copy alias into the buffer
		p.off += int64(inclLen)
		pkt, ok := p.finishPacket(sec, usec, origLen, data)
		if !ok {
			continue
		}
		return pkt, nil
	}
}

// NextBatch implements BatchReader. Each packet still aliases the buffer.
func (p *BytesPcapReader) NextBatch(dst []*Packet) (int, error) { return readBatch(p, dst) }
