package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func tshRecordBytes(t *testing.T, pkt *Packet) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := NewTSHWriter(&b).WritePacket(pkt); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

func posTestPacket(t *testing.T) *Packet {
	t.Helper()
	data := make([]byte, tshHeaderBytes)
	data[0] = 0x45 // IPv4, IHL 5
	data[2], data[3] = 0, 40
	return &Packet{Sec: 1, Usec: 2, Data: data, WireLen: 40}
}

func TestTSHReaderPos(t *testing.T) {
	rec := tshRecordBytes(t, posTestPacket(t))
	input := append(append([]byte{}, rec...), rec...)
	r := NewTSHReader(bytes.NewReader(input))
	r.SetTotal(int64(len(input)))

	if r.Pos() != 0 {
		t.Fatalf("initial Pos = %d", r.Pos())
	}
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	if r.Pos() != TSHRecordLen {
		t.Errorf("Pos after one record = %d, want %d", r.Pos(), TSHRecordLen)
	}
	if frac, ok := Progress(r); !ok || frac != 0.5 {
		t.Errorf("Progress = %v, %v; want 0.5, true", frac, ok)
	}
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
	if r.Pos() != r.Total() {
		t.Errorf("Pos %d != Total %d at EOF", r.Pos(), r.Total())
	}
}

func TestTSHReaderPosTruncatedRecord(t *testing.T) {
	rec := tshRecordBytes(t, posTestPacket(t))
	input := append(append([]byte{}, rec...), rec[:10]...)
	r := NewTSHReader(bytes.NewReader(input))
	r.SetTotal(int64(len(input)))
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	_, err := r.Next()
	var mre *MalformedRecordError
	if !errors.As(err, &mre) {
		t.Fatalf("want MalformedRecordError, got %v", err)
	}
	// The error reports the tracked start of the truncated record...
	if mre.Offset != TSHRecordLen {
		t.Errorf("error Offset = %d, want %d", mre.Offset, TSHRecordLen)
	}
	// ...while Pos accounts for the partial bytes actually consumed.
	if r.Pos() != int64(len(input)) {
		t.Errorf("Pos after truncation = %d, want %d", r.Pos(), len(input))
	}
}

func TestPcapReaderPos(t *testing.T) {
	var b bytes.Buffer
	w, err := NewPcapWriter(&b)
	if err != nil {
		t.Fatal(err)
	}
	pkt := posTestPacket(t)
	for i := 0; i < 3; i++ {
		if err := w.WritePacket(pkt); err != nil {
			t.Fatal(err)
		}
	}
	input := b.Bytes()
	r, err := NewPcapReader(bytes.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	r.SetTotal(int64(len(input)))
	if r.Pos() != pcapHeaderLen {
		t.Fatalf("Pos after header = %d, want %d", r.Pos(), pcapHeaderLen)
	}
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	wantPos := int64(pcapHeaderLen + pcapRecordLen + len(pkt.Data))
	if r.Pos() != wantPos {
		t.Errorf("Pos after one packet = %d, want %d", r.Pos(), wantPos)
	}
	for {
		if _, err := r.Next(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if r.Pos() != r.Total() {
		t.Errorf("Pos %d != Total %d at EOF", r.Pos(), r.Total())
	}
	if frac, ok := Progress(r); !ok || frac != 1 {
		t.Errorf("Progress at EOF = %v, %v; want 1, true", frac, ok)
	}
}

func TestPcapReaderPosTruncatedBody(t *testing.T) {
	var b bytes.Buffer
	w, err := NewPcapWriter(&b)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WritePacket(posTestPacket(t)); err != nil {
		t.Fatal(err)
	}
	input := b.Bytes()[:b.Len()-5] // cut into the record body
	r, err := NewPcapReader(bytes.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	_, err = r.Next()
	var mre *MalformedRecordError
	if !errors.As(err, &mre) {
		t.Fatalf("want MalformedRecordError, got %v", err)
	}
	if r.Pos() != int64(len(input)) {
		t.Errorf("Pos after truncated body = %d, want %d", r.Pos(), len(input))
	}
}

func TestSliceReaderPos(t *testing.T) {
	pkts := []*Packet{posTestPacket(t), posTestPacket(t), posTestPacket(t), posTestPacket(t)}
	r := NewSliceReader(pkts)
	if r.Pos() != 0 || r.Total() != 4 {
		t.Fatalf("initial Pos/Total = %d/%d", r.Pos(), r.Total())
	}
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	if frac, ok := Progress(r); !ok || frac != 0.25 {
		t.Errorf("Progress = %v, %v; want 0.25, true", frac, ok)
	}
}

func TestProgressUnknown(t *testing.T) {
	r := NewTSHReader(bytes.NewReader(nil)) // no SetTotal
	if _, ok := Progress(r); ok {
		t.Errorf("Progress should be unknown without SetTotal")
	}
	if _, ok := Progress(readerOnly{}); ok {
		t.Errorf("Progress should be unknown for non-Positioned readers")
	}
}

type readerOnly struct{}

func (readerOnly) Next() (*Packet, error) { return nil, io.EOF }
