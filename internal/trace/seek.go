package trace

import (
	"fmt"
	"io"
)

// Seeker is implemented by readers whose position can be captured and
// later restored — the substrate of run checkpointing. PosState returns
// the reader's resumable position: single-stream readers return one
// element (a byte offset for the file formats, a packet index for
// SliceReader — the same unit as Positioned.Pos), and MergeReader
// returns one element per shard. A nil PosState means the reader cannot
// be resumed (an unseekable source); callers must check it before
// promising resumability.
//
// SeekTo repositions the reader to a state previously returned by
// PosState on an equivalent reader over the same input, after which the
// reader yields exactly the packets it would have yielded from that
// point. States are only meaningful against the same input bytes —
// checkpoints pair them with a content fingerprint for that reason.
type Seeker interface {
	PosState() []int64
	SeekTo(state []int64) error
}

// Progresser is implemented by readers that can report their completed
// fraction directly. Progress prefers it over the Positioned-derived
// ratio; MergeReader uses it to report progress even when only some
// shards know their size.
type Progresser interface {
	// Progress returns the completed fraction in [0, 1] and whether it
	// is known.
	Progress() (float64, bool)
}

// PosState implements Seeker; the unit is packets.
func (s *SliceReader) PosState() []int64 { return []int64{int64(s.next)} }

// SeekTo implements Seeker.
func (s *SliceReader) SeekTo(state []int64) error {
	if len(state) != 1 || state[0] < 0 || state[0] > int64(len(s.pkts)) {
		return fmt.Errorf("trace: bad slice seek state %v for %d packets", state, len(s.pkts))
	}
	s.next = int(state[0])
	return nil
}

// PosState implements Seeker when the underlying source is seekable (a
// file): one element, the byte offset of the next unread record. It
// returns nil for unseekable sources (a network stream), which marks the
// reader non-resumable.
func (p *PcapReader) PosState() []int64 {
	if _, ok := p.src.(io.Seeker); !ok {
		return nil
	}
	return []int64{p.off}
}

// SeekTo implements Seeker: the source is repositioned and the read
// buffer discarded, so the next record read starts exactly at the
// checkpointed boundary.
func (p *PcapReader) SeekTo(state []int64) error {
	sk, ok := p.src.(io.Seeker)
	if !ok {
		return fmt.Errorf("trace: pcap source %T is not seekable", p.src)
	}
	if len(state) != 1 || state[0] < pcapHeaderLen {
		return fmt.Errorf("trace: bad pcap seek state %v", state)
	}
	if _, err := sk.Seek(state[0], io.SeekStart); err != nil {
		return fmt.Errorf("trace: seeking pcap source: %w", err)
	}
	p.r.Reset(p.src)
	p.off = state[0]
	return nil
}

// PosState implements Seeker; an in-memory capture is always resumable.
func (p *BytesPcapReader) PosState() []int64 { return []int64{p.off} }

// SeekTo implements Seeker.
func (p *BytesPcapReader) SeekTo(state []int64) error {
	if len(state) != 1 || state[0] < pcapHeaderLen || state[0] > int64(len(p.buf)) {
		return fmt.Errorf("trace: bad pcap seek state %v for %d-byte capture", state, len(p.buf))
	}
	p.off = state[0]
	return nil
}

// PosState implements Seeker when the underlying source is seekable.
func (t *TSHReader) PosState() []int64 {
	if _, ok := t.r.(io.Seeker); !ok {
		return nil
	}
	return []int64{t.off}
}

// SeekTo implements Seeker.
func (t *TSHReader) SeekTo(state []int64) error {
	sk, ok := t.r.(io.Seeker)
	if !ok {
		return fmt.Errorf("trace: TSH source %T is not seekable", t.r)
	}
	if len(state) != 1 || state[0] < 0 {
		return fmt.Errorf("trace: bad TSH seek state %v", state)
	}
	if _, err := sk.Seek(state[0], io.SeekStart); err != nil {
		return fmt.Errorf("trace: seeking TSH source: %w", err)
	}
	t.off = state[0]
	return nil
}
