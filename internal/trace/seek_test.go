package trace

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// seekTestPackets builds n packets with strictly increasing timestamps
// and distinguishable payloads, suitable for every file format.
func seekTestPackets(n, base int) []*Packet {
	pkts := make([]*Packet, n)
	for i := range pkts {
		pkts[i] = &Packet{
			Sec:  uint32(base + 2*i),
			Usec: uint32(i % 1000000),
			Data: ipv4Packet(uint32(base+i), uint32(i+1), i%40),
		}
		pkts[i].WireLen = len(pkts[i].Data)
	}
	return pkts
}

// drainReader reads r to EOF, failing the test on any other error.
func drainReader(t *testing.T, r Reader) []*Packet {
	t.Helper()
	var out []*Packet
	for {
		p, err := r.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		out = append(out, p)
	}
}

// readN reads exactly n packets.
func readN(t *testing.T, r Reader, n int) []*Packet {
	t.Helper()
	out := make([]*Packet, 0, n)
	for len(out) < n {
		p, err := r.Next()
		if err != nil {
			t.Fatalf("Next after %d packets: %v", len(out), err)
		}
		out = append(out, p)
	}
	return out
}

func comparePackets(t *testing.T, name string, got, want []*Packet) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d packets, want %d", name, len(got), len(want))
	}
	for i := range want {
		if got[i].Sec != want[i].Sec || got[i].Usec != want[i].Usec ||
			got[i].WireLen != want[i].WireLen || !bytes.Equal(got[i].Data, want[i].Data) {
			t.Fatalf("%s: packet %d differs:\ngot  %d.%06d len %d\nwant %d.%06d len %d",
				name, i, got[i].Sec, got[i].Usec, len(got[i].Data),
				want[i].Sec, want[i].Usec, len(want[i].Data))
		}
	}
}

// testSeekRoundTrip reads k packets off a fresh reader, captures its
// PosState, drains the rest as the expected tail, then seeks a second
// fresh reader to the state and checks it yields exactly the tail.
func testSeekRoundTrip(t *testing.T, name string, k int, newReader func(t *testing.T) Reader) {
	t.Helper()
	first := newReader(t)
	sk, ok := first.(Seeker)
	if !ok {
		t.Fatalf("%s: reader %T is not a Seeker", name, first)
	}
	readN(t, first, k)
	state := sk.PosState()
	if state == nil {
		t.Fatalf("%s: PosState is nil after %d packets", name, k)
	}
	want := drainReader(t, first)

	second := newReader(t)
	if err := second.(Seeker).SeekTo(state); err != nil {
		t.Fatalf("%s: SeekTo(%v): %v", name, state, err)
	}
	comparePackets(t, name, drainReader(t, second), want)
}

func writePcapFile(t *testing.T, pkts []*Packet) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "seek.pcap")
	if err := os.WriteFile(path, buildPcap(t, pkts), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSliceReaderSeekRoundTrip(t *testing.T) {
	pkts := seekTestPackets(17, 0)
	for _, k := range []int{0, 1, 8, 17} {
		testSeekRoundTrip(t, "slice", k, func(t *testing.T) Reader { return NewSliceReader(pkts) })
	}
	r := NewSliceReader(pkts)
	if err := r.SeekTo([]int64{int64(len(pkts)) + 1}); err == nil {
		t.Error("out-of-range slice seek accepted")
	}
	if err := r.SeekTo([]int64{1, 2}); err == nil {
		t.Error("multi-element slice seek state accepted")
	}
}

func TestBytesPcapReaderSeekRoundTrip(t *testing.T) {
	raw := buildPcap(t, seekTestPackets(13, 5))
	mk := func(t *testing.T) Reader {
		r, err := NewBytesPcapReader(raw)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	for _, k := range []int{0, 1, 6, 13} {
		testSeekRoundTrip(t, "bytespcap", k, mk)
	}
	r := mk(t).(*BytesPcapReader)
	if err := r.SeekTo([]int64{3}); err == nil {
		t.Error("seek into the pcap header accepted")
	}
}

func TestPcapFileReaderSeekRoundTrip(t *testing.T) {
	path := writePcapFile(t, seekTestPackets(13, 9))
	for name, open := range map[string]func(string) (FileReader, error){
		"buffered": OpenPcapBuffered,
		"mmap":     OpenPcap,
	} {
		mk := func(t *testing.T) Reader {
			fr, err := open(path)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { fr.Close() })
			return fr
		}
		for _, k := range []int{0, 1, 7, 13} {
			testSeekRoundTrip(t, "pcapfile/"+name, k, mk)
		}
	}
}

func TestTSHReaderSeekRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewTSHWriter(&buf)
	for _, p := range seekTestPackets(11, 3) {
		if err := w.WritePacket(p); err != nil {
			t.Fatal(err)
		}
	}
	raw := buf.Bytes()
	mk := func(t *testing.T) Reader { return NewTSHReader(bytes.NewReader(raw)) }
	for _, k := range []int{0, 1, 5, 11} {
		testSeekRoundTrip(t, "tsh", k, mk)
	}
}

// TestUnseekableSourcesNotResumable pins the contract that readers over
// sources that cannot seek report a nil PosState instead of a state that
// could not be restored.
func TestUnseekableSourcesNotResumable(t *testing.T) {
	raw := buildPcap(t, seekTestPackets(3, 0))
	// bytes.Buffer is an io.Reader but not an io.Seeker: a stand-in for
	// a network stream.
	pr, err := NewPcapReader(bytes.NewBuffer(raw))
	if err != nil {
		t.Fatal(err)
	}
	if st := pr.PosState(); st != nil {
		t.Errorf("pcap over stream: PosState = %v, want nil", st)
	}
	if err := pr.SeekTo([]int64{int64(pcapHeaderLen)}); err == nil {
		t.Error("pcap over stream: SeekTo succeeded")
	}
	tr := NewTSHReader(&bytes.Buffer{})
	if st := tr.PosState(); st != nil {
		t.Errorf("TSH over stream: PosState = %v, want nil", st)
	}
}

func TestMergeReaderSeekRoundTrip(t *testing.T) {
	// Two shards with interleaving timestamps: shard 0 holds even
	// seconds, shard 1 odd, so the merge alternates between them and a
	// mid-stream state catches shards at different depths.
	a := seekTestPackets(9, 0) // Sec 0,2,4,...
	b := seekTestPackets(7, 1) // Sec 1,3,5,...
	pathA, pathB := writePcapFile(t, a), writePcapFile(t, b)
	mk := func(t *testing.T) Reader {
		ra, err := OpenPcapBuffered(pathA)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ra.Close() })
		rb, err := OpenPcapBuffered(pathB)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { rb.Close() })
		return NewMergeReader(ra, rb)
	}
	for _, k := range []int{0, 1, 8, 16} {
		testSeekRoundTrip(t, "merge", k, mk)
	}

	// The state is per-shard: one element each, even mid-stream where a
	// buffered head makes the shard's own position one packet ahead.
	m := mk(t).(*MergeReader)
	readN(t, m, 5)
	if st := m.PosState(); len(st) != 2 {
		t.Fatalf("merge PosState = %v, want 2 elements", st)
	}
	if err := m.SeekTo([]int64{int64(pcapHeaderLen)}); err == nil {
		t.Error("merge seek with wrong shard count accepted")
	}
}

// TestMergeReaderPosStateNilShard: a merge over any unseekable shard is
// not resumable as a whole.
func TestMergeReaderPosStateNilShard(t *testing.T) {
	raw := buildPcap(t, seekTestPackets(3, 0))
	stream, err := NewPcapReader(bytes.NewBuffer(raw))
	if err != nil {
		t.Fatal(err)
	}
	m := NewMergeReader(NewSliceReader(seekTestPackets(3, 1)), stream)
	if st := m.PosState(); st != nil {
		t.Errorf("merge over stream shard: PosState = %v, want nil", st)
	}
}

// TestMergeReaderProgressPartialTotals: the merge reports a fraction
// over the shards that know their size, and unknown only when none do.
func TestMergeReaderProgressPartialTotals(t *testing.T) {
	raw := buildPcap(t, seekTestPackets(8, 0))
	known, err := NewBytesPcapReader(raw)
	if err != nil {
		t.Fatal(err)
	}
	unknown := NewTSHReader(&bytes.Buffer{}) // no SetTotal: size unknown
	m := NewMergeReader(known, unknown)
	if f, ok := m.Progress(); !ok || f < 0 || f > 1 {
		t.Errorf("partial-totals Progress = %v, %v; want known fraction", f, ok)
	}
	drainReader(t, m)
	if f, ok := m.Progress(); !ok || f != 1 {
		t.Errorf("drained Progress = %v, %v; want 1, true", f, ok)
	}
	none := NewMergeReader(NewTSHReader(&bytes.Buffer{}))
	if _, ok := none.Progress(); ok {
		t.Error("merge with no known totals reported progress")
	}
}
