package trace

// skipState is the shared skip-and-resync budget every trace reader
// embeds. The semantics are defined once here so they cannot drift
// between formats: skipping is off until enabled, a budget above zero
// caps how many malformed records may be skipped, and a budget of zero
// or below means unlimited.
type skipState struct {
	skipEnabled bool
	skipBudget  int // max skipped records; <= 0 means unlimited
	skipped     int
}

// enableSkip switches the reader from fail-fast to skip-and-resync with
// the given budget.
func (s *skipState) enableSkip(budget int) {
	s.skipEnabled = true
	s.skipBudget = budget
}

// consumeSkip takes one unit of skip budget; false means the policy (or
// budget) requires the malformed record to be surfaced as an error.
func (s *skipState) consumeSkip() bool {
	if !s.skipEnabled || (s.skipBudget > 0 && s.skipped >= s.skipBudget) {
		return false
	}
	s.skipped++
	return true
}

// Skipped returns how many malformed records were skipped so far.
func (s *skipState) Skipped() int { return s.skipped }
