package trace

import "fmt"

// TimedReader wraps a Reader and reports the duration of every read to
// an observer — the journey tracer's view of the ingestion stage. It
// forwards the full reader surface: batch reads go through the wrapped
// reader's native NextBatch when it has one, progress and seek state
// come from the underlying reader unchanged, so a TimedReader is
// transparent to checkpointing and progress display.
//
// The clock is injected (epoch nanoseconds, monotone) so deterministic
// tests can drive it; the observer runs synchronously on the reading
// goroutine.
type TimedReader struct {
	r     Reader
	clock func() int64
	// onRead observes one successful read: packets delivered, start
	// timestamp and duration. Reads that deliver zero packets (EOF,
	// errors) are not reported.
	onRead func(n int, start, dur int64)
}

// NewTimedReader wraps r. clock and onRead must be non-nil.
func NewTimedReader(r Reader, clock func() int64, onRead func(n int, start, dur int64)) *TimedReader {
	return &TimedReader{r: r, clock: clock, onRead: onRead}
}

// Next reads one packet, reporting it as a batch of one.
func (t *TimedReader) Next() (*Packet, error) {
	start := t.clock()
	p, err := t.r.Next()
	if err == nil {
		t.onRead(1, start, t.clock()-start)
	}
	return p, err
}

// NextBatch fills dst through the wrapped reader (its native batch
// method when present), timing the whole call.
func (t *TimedReader) NextBatch(dst []*Packet) (int, error) {
	start := t.clock()
	n, err := ReadBatch(t.r, dst)
	if n > 0 {
		t.onRead(n, start, t.clock()-start)
	}
	return n, err
}

// Progress forwards the wrapped reader's progress fraction.
func (t *TimedReader) Progress() (float64, bool) { return Progress(t.r) }

// PosState forwards the wrapped reader's resume state; nil when the
// underlying reader is not a Seeker (the same "not resumable" signal
// seekable readers use).
func (t *TimedReader) PosState() []int64 {
	if sk, ok := t.r.(Seeker); ok {
		return sk.PosState()
	}
	return nil
}

// SeekTo forwards to the wrapped reader's Seeker.
func (t *TimedReader) SeekTo(state []int64) error {
	if sk, ok := t.r.(Seeker); ok {
		return sk.SeekTo(state)
	}
	return fmt.Errorf("trace: timed reader source %T is not seekable", t.r)
}
