// Package trace reads and writes the packet trace formats PacketBench
// supports: the tcpdump/libpcap capture format and the NLANR PMA "Time
// Sequenced Headers" (TSH) format, the same two formats the paper's tool
// consumes.
//
// Packets are exposed to the rest of the system from the layer-3 (IPv4)
// header onward, which is the view the PacketBench application API
// provides. Link-layer framing in pcap files (Ethernet) is stripped by the
// reader; TSH records are header-only by construction.
package trace

import (
	"errors"
	"fmt"
	"io"
)

// Packet is one captured packet as handed to applications: layer-3 bytes
// plus capture metadata.
type Packet struct {
	// Sec and Usec are the capture timestamp.
	Sec  uint32
	Usec uint32
	// Data holds the packet from the first byte of the IPv4 header. It may
	// be shorter than the original packet for header-only captures.
	Data []byte
	// WireLen is the length of the packet on the wire (>= len(Data)).
	WireLen int
}

// Reader yields packets from a trace. Next returns io.EOF after the final
// packet.
type Reader interface {
	Next() (*Packet, error)
}

// Positioned is implemented by readers that can report how far through
// their input they are, for progress display. Pos and Total are in the
// reader's natural unit — bytes for the file formats, packets for
// SliceReader — so the fraction Pos/Total is meaningful even though the
// unit varies. Total returns 0 when the input size is unknown (an
// unseekable stream, or no SetTotal call).
type Positioned interface {
	// Pos returns the amount of input consumed so far, including any
	// skipped or partially-read trailing record.
	Pos() int64
	// Total returns the input size, or 0 if unknown.
	Total() int64
}

// Progress returns the completed fraction of r's input in [0, 1] and
// whether it is known. Readers implementing Progresser report it
// directly (MergeReader computes a fraction even when only some shards
// know their size); otherwise the reader must implement Positioned and
// know its total size.
func Progress(r Reader) (float64, bool) {
	if pr, ok := r.(Progresser); ok {
		return pr.Progress()
	}
	p, ok := r.(Positioned)
	if !ok {
		return 0, false
	}
	total := p.Total()
	if total <= 0 {
		return 0, false
	}
	frac := float64(p.Pos()) / float64(total)
	if frac > 1 {
		frac = 1
	}
	return frac, true
}

// BatchReader is implemented by readers that can yield many packets per
// call, letting streaming consumers amortize per-packet overhead (channel
// synchronization in the pool, interface dispatch) over a batch.
//
// NextBatch fills dst from the front and returns how many entries were
// written. Like io.Reader, it may return n > 0 alongside an error — the
// packets are valid and the error applies after them. io.EOF signals the
// end of the trace; n == 0 with a nil error only occurs for len(dst) == 0.
type BatchReader interface {
	Reader
	NextBatch(dst []*Packet) (int, error)
}

// ReadBatch fills dst from r, using the reader's native NextBatch when it
// has one and falling back to repeated Next calls otherwise. Semantics
// match BatchReader.NextBatch.
func ReadBatch(r Reader, dst []*Packet) (int, error) {
	if br, ok := r.(BatchReader); ok {
		return br.NextBatch(dst)
	}
	return readBatch(r, dst)
}

// readBatch is the generic NextBatch loop shared by readers whose batch
// method is just repeated Next calls.
func readBatch(r Reader, dst []*Packet) (int, error) {
	n := 0
	for n < len(dst) {
		p, err := r.Next()
		if err != nil {
			return n, err
		}
		dst[n] = p
		n++
	}
	return n, nil
}

// Writer appends packets to a trace.
type Writer interface {
	WritePacket(*Packet) error
}

// Format identifies a trace file format.
type Format int

// The supported trace formats.
const (
	FormatPcap Format = iota // tcpdump/libpcap
	FormatTSH                // NLANR Time Sequenced Headers
)

// String returns the conventional name of the format.
func (f Format) String() string {
	switch f {
	case FormatPcap:
		return "pcap"
	case FormatTSH:
		return "tsh"
	}
	return fmt.Sprintf("format?%d", int(f))
}

// ErrNotPcap is returned when a pcap global header's magic is unknown.
var ErrNotPcap = errors.New("trace: not a pcap file (bad magic)")

// ErrMalformedRecord is the sentinel wrapped by every record-corruption
// error, so callers can distinguish a corrupt record (skippable under a
// resync policy) from an I/O failure:
//
//	if errors.Is(err, trace.ErrMalformedRecord) { ... }
var ErrMalformedRecord = errors.New("trace: malformed record")

// MalformedRecordError describes one corrupt trace record: where in the
// input stream it started and why it was rejected. It unwraps to
// ErrMalformedRecord (and to the underlying cause when there is one).
type MalformedRecordError struct {
	// Format is the trace format being read.
	Format Format
	// Offset is the byte offset of the record in the input stream.
	Offset int64
	// Reason says what was wrong with the record.
	Reason string
	// Err is the underlying error, when the corruption surfaced as one
	// (for example io.ErrUnexpectedEOF on a truncated final record).
	Err error
}

func (e *MalformedRecordError) Error() string {
	return fmt.Sprintf("trace: malformed %s record at offset %d: %s", e.Format, e.Offset, e.Reason)
}

// Unwrap exposes ErrMalformedRecord and the underlying cause to
// errors.Is/errors.As.
func (e *MalformedRecordError) Unwrap() []error {
	if e.Err != nil {
		return []error{ErrMalformedRecord, e.Err}
	}
	return []error{ErrMalformedRecord}
}

// NewReader constructs a reader for the given format.
func NewReader(r io.Reader, f Format) (Reader, error) {
	switch f {
	case FormatPcap:
		return NewPcapReader(r)
	case FormatTSH:
		return NewTSHReader(r), nil
	}
	return nil, fmt.Errorf("trace: unknown format %v", f)
}

// NewWriter constructs a writer for the given format.
func NewWriter(w io.Writer, f Format) (Writer, error) {
	switch f {
	case FormatPcap:
		return NewPcapWriter(w)
	case FormatTSH:
		return NewTSHWriter(w), nil
	}
	return nil, fmt.Errorf("trace: unknown format %v", f)
}

// ReadAll drains a reader, returning at most limit packets (limit <= 0
// means no limit).
func ReadAll(r Reader, limit int) ([]*Packet, error) {
	var pkts []*Packet
	for limit <= 0 || len(pkts) < limit {
		p, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return pkts, err
		}
		pkts = append(pkts, p)
	}
	return pkts, nil
}

// SliceReader adapts an in-memory packet slice to the Reader interface,
// so already-loaded traces can feed streaming consumers (Pool.RunTrace).
type SliceReader struct {
	pkts []*Packet
	next int
}

// NewSliceReader returns a Reader yielding the packets in order.
func NewSliceReader(pkts []*Packet) *SliceReader {
	return &SliceReader{pkts: pkts}
}

// Next implements Reader.
func (s *SliceReader) Next() (*Packet, error) {
	if s.next >= len(s.pkts) {
		return nil, io.EOF
	}
	p := s.pkts[s.next]
	s.next++
	return p, nil
}

// NextBatch implements BatchReader with a single copy from the backing
// slice.
func (s *SliceReader) NextBatch(dst []*Packet) (int, error) {
	if s.next >= len(s.pkts) {
		return 0, io.EOF
	}
	n := copy(dst, s.pkts[s.next:])
	s.next += n
	return n, nil
}

// Pos implements Positioned; the unit is packets.
func (s *SliceReader) Pos() int64 { return int64(s.next) }

// Total implements Positioned; the unit is packets.
func (s *SliceReader) Total() int64 { return int64(len(s.pkts)) }
