package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"

	"repro/internal/packet"
)

// ipv4Packet builds a valid serialized IPv4+UDP packet.
func ipv4Packet(src, dst uint32, payload int) []byte {
	h := packet.IPv4Header{
		Version: 4, IHL: 5, TTL: 64, Protocol: packet.ProtoUDP,
		Src: src, Dst: dst,
		TotalLen: uint16(packet.IPv4HeaderLen + packet.UDPHeaderLen + payload),
	}
	b := make([]byte, h.TotalLen)
	h.MarshalInto(b)
	u := packet.UDPHeader{SrcPort: 1000, DstPort: 2000, Length: uint16(packet.UDPHeaderLen + payload)}
	u.MarshalInto(b[packet.IPv4HeaderLen:])
	return b
}

func TestPcapRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewPcapWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := []*Packet{
		{Sec: 100, Usec: 5, Data: ipv4Packet(1, 2, 10), WireLen: 38},
		{Sec: 101, Usec: 999999, Data: ipv4Packet(3, 4, 100), WireLen: 128},
		{Sec: 102, Usec: 0, Data: ipv4Packet(5, 6, 0), WireLen: 28},
	}
	for _, p := range want {
		if err := w.WritePacket(p); err != nil {
			t.Fatal(err)
		}
	}
	r, err := NewPcapReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.LinkType() != LinkTypeRaw {
		t.Errorf("link type = %d, want raw", r.LinkType())
	}
	got, err := ReadAll(r, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("read %d packets, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Sec != want[i].Sec || got[i].Usec != want[i].Usec {
			t.Errorf("packet %d timestamp = %d.%06d, want %d.%06d",
				i, got[i].Sec, got[i].Usec, want[i].Sec, want[i].Usec)
		}
		if !bytes.Equal(got[i].Data, want[i].Data) {
			t.Errorf("packet %d data mismatch", i)
		}
		if got[i].WireLen != want[i].WireLen {
			t.Errorf("packet %d wire length = %d, want %d", i, got[i].WireLen, want[i].WireLen)
		}
	}
}

func TestPcapBigEndianRead(t *testing.T) {
	// Hand-build a big-endian pcap with one raw-IP packet.
	var buf bytes.Buffer
	data := ipv4Packet(7, 8, 4)
	hdr := make([]byte, pcapHeaderLen)
	binary.BigEndian.PutUint32(hdr[0:], pcapMagic)
	binary.BigEndian.PutUint16(hdr[4:], 2)
	binary.BigEndian.PutUint16(hdr[6:], 4)
	binary.BigEndian.PutUint32(hdr[16:], 65536)
	binary.BigEndian.PutUint32(hdr[20:], LinkTypeRaw)
	buf.Write(hdr)
	rec := make([]byte, pcapRecordLen)
	binary.BigEndian.PutUint32(rec[0:], 42)
	binary.BigEndian.PutUint32(rec[4:], 7)
	binary.BigEndian.PutUint32(rec[8:], uint32(len(data)))
	binary.BigEndian.PutUint32(rec[12:], uint32(len(data)))
	buf.Write(rec)
	buf.Write(data)

	r, err := NewPcapReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	p, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if p.Sec != 42 || p.Usec != 7 || !bytes.Equal(p.Data, data) {
		t.Errorf("big-endian read mismatch: %+v", p)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("expected EOF, got %v", err)
	}
}

func TestPcapEthernetStripping(t *testing.T) {
	var buf bytes.Buffer
	hdr := make([]byte, pcapHeaderLen)
	binary.LittleEndian.PutUint32(hdr[0:], pcapMagic)
	binary.LittleEndian.PutUint32(hdr[16:], 65536)
	binary.LittleEndian.PutUint32(hdr[20:], LinkTypeEthernet)
	buf.Write(hdr)

	writeFrame := func(etherType uint16, ip []byte) {
		frame := make([]byte, ethernetHeaderLen+len(ip))
		binary.BigEndian.PutUint16(frame[12:], etherType)
		copy(frame[ethernetHeaderLen:], ip)
		rec := make([]byte, pcapRecordLen)
		binary.LittleEndian.PutUint32(rec[8:], uint32(len(frame)))
		binary.LittleEndian.PutUint32(rec[12:], uint32(len(frame)))
		buf.Write(rec)
		buf.Write(frame)
	}
	ip := ipv4Packet(9, 10, 0)
	writeFrame(0x0806, make([]byte, 28)) // ARP: must be skipped
	writeFrame(etherTypeIPv4, ip)

	r, err := NewPcapReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	p, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p.Data, ip) {
		t.Error("Ethernet header not stripped or wrong frame returned")
	}
	if p.WireLen != len(ip) {
		t.Errorf("wire length = %d, want %d", p.WireLen, len(ip))
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("want EOF, got %v", err)
	}
}

func TestPcapBadMagic(t *testing.T) {
	_, err := NewPcapReader(bytes.NewReader(make([]byte, 24)))
	if err != ErrNotPcap {
		t.Errorf("err = %v, want ErrNotPcap", err)
	}
}

func TestPcapTruncatedFile(t *testing.T) {
	_, err := NewPcapReader(bytes.NewReader([]byte{1, 2, 3}))
	if err == nil {
		t.Error("truncated header accepted")
	}

	var buf bytes.Buffer
	w, _ := NewPcapWriter(&buf)
	_ = w.WritePacket(&Packet{Data: ipv4Packet(1, 2, 0)})
	full := buf.Bytes()
	// Chop mid-record.
	r, err := NewPcapReader(bytes.NewReader(full[:len(full)-5]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil {
		t.Error("truncated record read succeeded")
	}
}

func TestPcapUnsupportedLinkType(t *testing.T) {
	hdr := make([]byte, pcapHeaderLen)
	binary.LittleEndian.PutUint32(hdr[0:], pcapMagic)
	binary.LittleEndian.PutUint32(hdr[20:], 999)
	_, err := NewPcapReader(bytes.NewReader(hdr))
	if err == nil || !strings.Contains(err.Error(), "link type") {
		t.Errorf("err = %v, want unsupported link type", err)
	}
}

func TestTSHRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewTSHWriter(&buf)
	w.Interface = 3
	pkts := []*Packet{
		{Sec: 10, Usec: 100, Data: ipv4Packet(0x0A000001, 0x0A000002, 100)},
		{Sec: 11, Usec: 0xFFFFFF, Data: ipv4Packet(0x0A000003, 0x0A000004, 0)},
	}
	for _, p := range pkts {
		if err := w.WritePacket(p); err != nil {
			t.Fatal(err)
		}
	}
	if buf.Len() != 2*TSHRecordLen {
		t.Fatalf("wrote %d bytes, want %d", buf.Len(), 2*TSHRecordLen)
	}
	raw := buf.Bytes()
	if TSHInterface(raw[:TSHRecordLen]) != 3 {
		t.Errorf("interface byte = %d, want 3", TSHInterface(raw[:TSHRecordLen]))
	}

	r := NewTSHReader(&buf)
	for i, want := range pkts {
		got, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		if got.Sec != want.Sec {
			t.Errorf("packet %d sec = %d, want %d", i, got.Sec, want.Sec)
		}
		if len(got.Data) != tshHeaderBytes {
			t.Errorf("packet %d data length = %d, want %d", i, len(got.Data), tshHeaderBytes)
		}
		// The 36 header bytes survive (packet 0 is longer, so truncated;
		// packet 1 is 28 bytes, so zero padded).
		n := len(want.Data)
		if n > tshHeaderBytes {
			n = tshHeaderBytes
		}
		if !bytes.Equal(got.Data[:n], want.Data[:n]) {
			t.Errorf("packet %d header bytes mismatch", i)
		}
		// Wire length recovered from the IP total-length field.
		wantWire := int(binary.BigEndian.Uint16(want.Data[2:]))
		if wantWire < tshHeaderBytes {
			wantWire = tshHeaderBytes
		}
		if got.WireLen != wantWire {
			t.Errorf("packet %d wire = %d, want %d", i, got.WireLen, wantWire)
		}
		if err := ValidateIPv4(got); err != nil {
			t.Errorf("packet %d does not parse as IPv4: %v", i, err)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("want EOF, got %v", err)
	}
}

func TestTSHUsecMask(t *testing.T) {
	var buf bytes.Buffer
	w := NewTSHWriter(&buf)
	w.Interface = 9
	if err := w.WritePacket(&Packet{Sec: 1, Usec: 0x12345678, Data: ipv4Packet(1, 2, 0)}); err != nil {
		t.Fatal(err)
	}
	r := NewTSHReader(&buf)
	p, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	// Only the low 24 bits of usec survive; the interface byte overlays
	// the top 8.
	if p.Usec != 0x345678 {
		t.Errorf("usec = %#x, want 0x345678", p.Usec)
	}
}

func TestTSHRejectsOptions(t *testing.T) {
	h := packet.IPv4Header{Version: 4, IHL: 6, TTL: 1, TotalLen: 24,
		Options: []byte{1, 1, 1, 1}}
	b := h.Marshal()
	w := NewTSHWriter(io.Discard)
	if err := w.WritePacket(&Packet{Data: b}); err == nil {
		t.Error("TSH writer accepted IP options")
	}
}

func TestTSHPartialRecord(t *testing.T) {
	r := NewTSHReader(bytes.NewReader(make([]byte, TSHRecordLen+10)))
	if _, err := r.Next(); err != nil {
		t.Fatalf("first record: %v", err)
	}
	if _, err := r.Next(); err == nil || err == io.EOF {
		t.Errorf("partial record gave %v, want a non-EOF error", err)
	}
}

func TestFormatDispatch(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, FormatTSH)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WritePacket(&Packet{Data: ipv4Packet(1, 2, 0)}); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf, FormatTSH)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}

	buf.Reset()
	if _, err := NewWriter(&buf, FormatPcap); err != nil {
		t.Fatal(err)
	}
	if _, err := NewReader(&buf, FormatPcap); err != nil {
		t.Fatal(err)
	}

	if _, err := NewReader(&buf, Format(99)); err == nil {
		t.Error("unknown format accepted by NewReader")
	}
	if _, err := NewWriter(&buf, Format(99)); err == nil {
		t.Error("unknown format accepted by NewWriter")
	}
	if FormatPcap.String() != "pcap" || FormatTSH.String() != "tsh" {
		t.Error("format names wrong")
	}
}

func TestReadAllLimit(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewPcapWriter(&buf)
	for i := 0; i < 10; i++ {
		_ = w.WritePacket(&Packet{Data: ipv4Packet(uint32(i), 1, 0)})
	}
	r, _ := NewPcapReader(&buf)
	got, err := ReadAll(r, 4)
	if err != nil || len(got) != 4 {
		t.Errorf("ReadAll(4) = %d packets, %v", len(got), err)
	}
}

func TestPcapUndersizedOrigLenRejected(t *testing.T) {
	// A record claiming origLen < inclLen is self-contradictory (a capture
	// cannot hold more bytes than were on the wire). plausibleHeader has
	// always rejected such headers during resync; recHeaderProblem must
	// reject them on the normal path too, as a typed malformed-record
	// error carrying the record's offset.
	build := func() *bytes.Buffer {
		var buf bytes.Buffer
		hdr := make([]byte, pcapHeaderLen)
		binary.LittleEndian.PutUint32(hdr[0:], pcapMagic)
		binary.LittleEndian.PutUint32(hdr[16:], 65536)
		binary.LittleEndian.PutUint32(hdr[20:], LinkTypeEthernet)
		buf.Write(hdr)

		ip := ipv4Packet(3, 4, 0)
		frame := make([]byte, ethernetHeaderLen+len(ip))
		binary.BigEndian.PutUint16(frame[12:], etherTypeIPv4)
		copy(frame[ethernetHeaderLen:], ip)
		rec := make([]byte, pcapRecordLen)
		binary.LittleEndian.PutUint32(rec[8:], uint32(len(frame)))
		binary.LittleEndian.PutUint32(rec[12:], 10) // lying origLen < inclLen
		buf.Write(rec)
		buf.Write(frame)
		return &buf
	}

	r, err := NewPcapReader(build())
	if err != nil {
		t.Fatal(err)
	}
	_, err = r.Next()
	var mr *MalformedRecordError
	if !errors.As(err, &mr) {
		t.Fatalf("undersized origLen err = %v, want *MalformedRecordError", err)
	}
	if mr.Offset != pcapHeaderLen {
		t.Errorf("Offset = %d, want %d", mr.Offset, pcapHeaderLen)
	}
	if !strings.Contains(mr.Reason, "original length") {
		t.Errorf("Reason = %q, want mention of original length", mr.Reason)
	}

	// Under skip mode the record is skipped like any other malformed one.
	r, err = NewPcapReader(build())
	if err != nil {
		t.Fatal(err)
	}
	r.SetSkipMalformed(-1)
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("skip-mode Next = %v, want EOF (sole record skipped)", err)
	}
	if r.Skipped() != 1 {
		t.Errorf("Skipped = %d, want 1", r.Skipped())
	}
}

func TestPcapOverlongRecordErrors(t *testing.T) {
	build := func(snapLen, inclLen uint32) *bytes.Buffer {
		var buf bytes.Buffer
		hdr := make([]byte, pcapHeaderLen)
		binary.LittleEndian.PutUint32(hdr[0:], pcapMagic)
		binary.LittleEndian.PutUint32(hdr[16:], snapLen)
		binary.LittleEndian.PutUint32(hdr[20:], LinkTypeRaw)
		buf.Write(hdr)
		rec := make([]byte, pcapRecordLen)
		binary.LittleEndian.PutUint32(rec[8:], inclLen)
		binary.LittleEndian.PutUint32(rec[12:], inclLen)
		buf.Write(rec)
		return &buf
	}

	// Over the snap length: the message names the snap length.
	r, err := NewPcapReader(build(128, 256))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil || !strings.Contains(err.Error(), "snap length 128") {
		t.Errorf("err = %v, want snap-length complaint", err)
	}

	// Over the absolute bound with snapLen == 0: must NOT claim
	// "exceeds snap length 0".
	r, err = NewPcapReader(build(0, 1<<25))
	if err != nil {
		t.Fatal(err)
	}
	_, err = r.Next()
	if err == nil {
		t.Fatal("oversized record accepted")
	}
	if strings.Contains(err.Error(), "snap length") {
		t.Errorf("err %q blames the snap length for the absolute bound", err)
	}
	if !strings.Contains(err.Error(), "maximum supported length") {
		t.Errorf("err = %v, want maximum-length complaint", err)
	}
}

func TestSliceReader(t *testing.T) {
	pkts := []*Packet{
		{Data: ipv4Packet(1, 2, 0)},
		{Data: ipv4Packet(3, 4, 8)},
	}
	r := NewSliceReader(pkts)
	for i := range pkts {
		p, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		if p != pkts[i] {
			t.Errorf("packet %d: wrong pointer", i)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("want EOF, got %v", err)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("EOF not sticky: %v", err)
	}
}

// buildPcap serializes packets into an in-memory little-endian raw-IP
// capture and returns the bytes, so corruption tests can splice in junk.
func buildPcap(t *testing.T, pkts []*Packet) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewPcapWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkts {
		if err := w.WritePacket(p); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

func TestMalformedRecordErrorShape(t *testing.T) {
	pkts := []*Packet{{Sec: 1, Data: ipv4Packet(1, 2, 4)}}
	raw := buildPcap(t, pkts)
	// Corrupt the record's inclLen to an over-snap value.
	binary.LittleEndian.PutUint32(raw[pcapHeaderLen+8:], 1<<20)
	r, err := NewPcapReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	_, err = r.Next()
	if err == nil {
		t.Fatal("corrupt record accepted")
	}
	if !errors.Is(err, ErrMalformedRecord) {
		t.Errorf("errors.Is(%v, ErrMalformedRecord) = false", err)
	}
	var merr *MalformedRecordError
	if !errors.As(err, &merr) {
		t.Fatalf("error %T is not a *MalformedRecordError", err)
	}
	if merr.Format != FormatPcap {
		t.Errorf("Format = %v", merr.Format)
	}
	if merr.Offset != pcapHeaderLen {
		t.Errorf("Offset = %d, want %d (first record)", merr.Offset, pcapHeaderLen)
	}
	if merr.Reason == "" {
		t.Error("empty Reason")
	}
	// An honest I/O failure must NOT read as corruption.
	if errors.Is(io.ErrClosedPipe, ErrMalformedRecord) {
		t.Error("unrelated error matches ErrMalformedRecord")
	}
}

func TestPcapSkipMalformedResync(t *testing.T) {
	pkts := []*Packet{
		{Sec: 1, Usec: 100, Data: ipv4Packet(0x0A000001, 0x0A000002, 40)},
		{Sec: 2, Usec: 200, Data: ipv4Packet(0x0A000003, 0x0A000004, 24)},
		{Sec: 3, Usec: 300, Data: ipv4Packet(0x0A000005, 0x0A000006, 60)},
	}
	raw := buildPcap(t, pkts)
	// Corrupt the middle record's inclLen: the reader must resync by
	// scanning over its (now unreachable) body to record 3's header.
	rec2 := pcapHeaderLen + pcapRecordLen + len(pkts[0].Data)
	binary.LittleEndian.PutUint32(raw[rec2+8:], 0xFFFFFFFF)

	// Default policy: fail fast with a typed error.
	r, err := NewPcapReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != nil {
		t.Fatalf("record 1: %v", err)
	}
	if _, err := r.Next(); !errors.Is(err, ErrMalformedRecord) {
		t.Fatalf("record 2: err = %v, want malformed", err)
	}

	// Skip-and-resync: records 1 and 3 survive, one record is skipped.
	r, err = NewPcapReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	r.SetSkipMalformed(10)
	var got []*Packet
	for {
		p, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, p)
	}
	if len(got) != 2 {
		t.Fatalf("recovered %d packets, want 2", len(got))
	}
	if got[0].Sec != 1 || got[1].Sec != 3 {
		t.Errorf("recovered packets Sec = %d, %d; want 1, 3", got[0].Sec, got[1].Sec)
	}
	if !bytes.Equal(got[1].Data, pkts[2].Data) {
		t.Error("resynced packet data differs from the original")
	}
	if r.Skipped() != 1 {
		t.Errorf("Skipped = %d, want 1", r.Skipped())
	}
}

func TestPcapSkipBudgetExhausted(t *testing.T) {
	pkts := make([]*Packet, 6)
	for i := range pkts {
		pkts[i] = &Packet{Sec: uint32(i + 1), Data: ipv4Packet(1, 2, 16)}
	}
	raw := buildPcap(t, pkts)
	// Corrupt records 2 and 5, separated by two good records so they cost
	// two distinct skips. (Closer spacings blur together: consecutive
	// corrupt records are jumped by a single resync scan, and a good
	// record directly before a corrupt one fails resync's
	// next-header confirmation and is sacrificed with it.)
	recLen := pcapRecordLen + len(pkts[0].Data)
	for _, i := range []int{1, 4} {
		binary.LittleEndian.PutUint32(raw[pcapHeaderLen+i*recLen+8:], 0xFFFFFFFF)
	}
	r, err := NewPcapReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	r.SetSkipMalformed(1)
	var secs []uint32
	var lastErr error
	for {
		p, err := r.Next()
		if err != nil {
			lastErr = err
			break
		}
		secs = append(secs, p.Sec)
	}
	if !errors.Is(lastErr, ErrMalformedRecord) {
		t.Errorf("after budget exhaustion err = %v, want malformed", lastErr)
	}
	if want := []uint32{1, 3, 4}; len(secs) != 3 || secs[0] != 1 || secs[1] != 3 || secs[2] != 4 {
		t.Errorf("recovered secs %v, want %v (budget 1 covers record 2 only)", secs, want)
	}
	if r.Skipped() != 1 {
		t.Errorf("Skipped = %d, want 1", r.Skipped())
	}
}

func TestPcapSkipTruncatedTail(t *testing.T) {
	pkts := []*Packet{
		{Sec: 1, Data: ipv4Packet(1, 2, 8)},
		{Sec: 2, Data: ipv4Packet(3, 4, 8)},
	}
	raw := buildPcap(t, pkts)
	truncated := raw[:len(raw)-5] // cut into record 2's body

	r, err := NewPcapReader(bytes.NewReader(truncated))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	_, err = r.Next()
	if !errors.Is(err, ErrMalformedRecord) || !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("truncated body err = %v, want malformed wrapping unexpected EOF", err)
	}

	r, err = NewPcapReader(bytes.NewReader(truncated))
	if err != nil {
		t.Fatal(err)
	}
	r.SetSkipMalformed(0) // unlimited
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("skip mode on truncated tail: err = %v, want EOF", err)
	}
	if r.Skipped() != 1 {
		t.Errorf("Skipped = %d, want 1", r.Skipped())
	}
}

func TestTSHSkipMalformed(t *testing.T) {
	var buf bytes.Buffer
	w := NewTSHWriter(&buf)
	for i := 0; i < 4; i++ {
		if err := w.WritePacket(&Packet{Sec: uint32(i + 1), Data: ipv4Packet(1, 2, 8)}); err != nil {
			t.Fatal(err)
		}
	}
	raw := buf.Bytes()
	// Wreck record 2's IP version nibble and record 3's total length.
	raw[TSHRecordLen+8] = 0x60 // version 6
	binary.BigEndian.PutUint16(raw[2*TSHRecordLen+8+2:], 7)

	// Default: no validation, all four records come back (TSH has no
	// per-record magic; historical behavior is preserved).
	r := NewTSHReader(bytes.NewReader(raw))
	n := 0
	for {
		if _, err := r.Next(); err != nil {
			break
		}
		n++
	}
	if n != 4 {
		t.Fatalf("default mode read %d records, want 4", n)
	}

	// Skip mode: the two wrecked records are dropped.
	r = NewTSHReader(bytes.NewReader(raw))
	r.SetSkipMalformed(5)
	var secs []uint32
	for {
		p, err := r.Next()
		if err != nil {
			break
		}
		secs = append(secs, p.Sec)
	}
	if len(secs) != 2 || secs[0] != 1 || secs[1] != 4 {
		t.Errorf("skip mode secs = %v, want [1 4]", secs)
	}
	if r.Skipped() != 2 {
		t.Errorf("Skipped = %d, want 2", r.Skipped())
	}

	// Budget 1: second corruption surfaces as a typed error.
	r = NewTSHReader(bytes.NewReader(raw))
	r.SetSkipMalformed(1)
	var lastErr error
	for {
		if _, err := r.Next(); err != nil {
			lastErr = err
			break
		}
	}
	if !errors.Is(lastErr, ErrMalformedRecord) {
		t.Errorf("budget-exhausted err = %v, want malformed", lastErr)
	}
}
