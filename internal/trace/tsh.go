package trace

import (
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/packet"
)

// TSHRecordLen is the fixed size of one NLANR Time Sequenced Headers
// record: an 8-byte timestamp, the 20-byte IPv4 header, and the first 16
// bytes of the transport header.
const TSHRecordLen = 44

// tshHeaderBytes is the number of packet bytes carried per record.
const tshHeaderBytes = 36

// TSHReader reads the NLANR PMA Time Sequenced Headers format used by the
// MRA/COS/ODU traces in the paper. Each 44-byte record is:
//
//	bytes 0-3   timestamp, seconds (big endian)
//	byte  4     interface number
//	bytes 5-7   timestamp, microseconds (big endian, 24 bits)
//	bytes 8-27  IPv4 header (no options; TSH captures truncate them)
//	bytes 28-43 first 16 bytes of the transport header
//
// The packet handed to applications is the 36 captured header bytes; the
// wire length comes from the IP header's total-length field.
type TSHReader struct {
	r io.Reader
}

// NewTSHReader wraps r.
func NewTSHReader(r io.Reader) *TSHReader { return &TSHReader{r: r} }

// Next returns the next record, or io.EOF at the end. A trailing partial
// record is reported as io.ErrUnexpectedEOF.
func (t *TSHReader) Next() (*Packet, error) {
	var rec [TSHRecordLen]byte
	if _, err := io.ReadFull(t.r, rec[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("trace: reading TSH record: %w", err)
	}
	sec := binary.BigEndian.Uint32(rec[0:])
	usec := binary.BigEndian.Uint32(rec[4:]) & 0x00FFFFFF
	data := make([]byte, tshHeaderBytes)
	copy(data, rec[8:])
	wire := int(binary.BigEndian.Uint16(data[2:])) // IP total length
	if wire < tshHeaderBytes {
		wire = tshHeaderBytes
	}
	return &Packet{Sec: sec, Usec: usec, Data: data, WireLen: wire}, nil
}

// Interface extracts the capture interface number of the most recent
// record layout from raw record bytes; exposed for tooling that needs it.
func TSHInterface(rec []byte) uint8 {
	if len(rec) < 5 {
		return 0
	}
	return rec[4]
}

// TSHWriter writes the TSH format. Packets are truncated (or zero padded)
// to the 36 header bytes a record carries.
type TSHWriter struct {
	w io.Writer
	// Interface is stamped into byte 4 of each record.
	Interface uint8
}

// NewTSHWriter wraps w.
func NewTSHWriter(w io.Writer) *TSHWriter { return &TSHWriter{w: w} }

// WritePacket appends one record. Packets whose IPv4 header carries
// options cannot be represented (TSH fixes the IP header at 20 bytes) and
// are rejected.
func (t *TSHWriter) WritePacket(pkt *Packet) error {
	if len(pkt.Data) > 0 {
		ihl := pkt.Data[0] & 0xF
		if ihl > 5 {
			return fmt.Errorf("trace: TSH cannot represent IP options (IHL %d)", ihl)
		}
	}
	var rec [TSHRecordLen]byte
	binary.BigEndian.PutUint32(rec[0:], pkt.Sec)
	binary.BigEndian.PutUint32(rec[4:], pkt.Usec&0x00FFFFFF)
	rec[4] = t.Interface
	copy(rec[8:], pkt.Data) // truncates past 36 bytes
	if _, err := t.w.Write(rec[:]); err != nil {
		return fmt.Errorf("trace: writing TSH record: %w", err)
	}
	return nil
}

// ValidateIPv4 checks that a packet parses as IPv4, a convenience the
// generator and CLI use to sanity check traces.
func ValidateIPv4(p *Packet) error {
	_, err := packet.ParseIPv4(p.Data)
	return err
}
