package trace

import (
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/packet"
)

// TSHRecordLen is the fixed size of one NLANR Time Sequenced Headers
// record: an 8-byte timestamp, the 20-byte IPv4 header, and the first 16
// bytes of the transport header.
const TSHRecordLen = 44

// tshHeaderBytes is the number of packet bytes carried per record.
const tshHeaderBytes = 36

// TSHReader reads the NLANR PMA Time Sequenced Headers format used by the
// MRA/COS/ODU traces in the paper. Each 44-byte record is:
//
//	bytes 0-3   timestamp, seconds (big endian)
//	byte  4     interface number
//	bytes 5-7   timestamp, microseconds (big endian, 24 bits)
//	bytes 8-27  IPv4 header (no options; TSH captures truncate them)
//	bytes 28-43 first 16 bytes of the transport header
//
// The packet handed to applications is the 36 captured header bytes; the
// wire length comes from the IP header's total-length field.
//
// The reader accepts any 44-byte record by default (the format has no
// per-record magic to validate against). SetSkipMalformed turns on IPv4
// header sanity checks and skips records failing them — the fixed record
// size makes resync trivial: advance one record.
type TSHReader struct {
	skipState
	r     io.Reader
	off   int64
	total int64
}

// NewTSHReader wraps r.
func NewTSHReader(r io.Reader) *TSHReader { return &TSHReader{r: r} }

// Pos implements Positioned: the number of input bytes consumed,
// including skipped records and the partial bytes of a truncated
// trailing record.
func (t *TSHReader) Pos() int64 { return t.off }

// SetTotal records the input size in bytes (for example from the file's
// stat), enabling progress reporting through Total.
func (t *TSHReader) SetTotal(n int64) { t.total = n }

// Total implements Positioned; 0 means unknown.
func (t *TSHReader) Total() int64 { return t.total }

// SetSkipMalformed enables IPv4 sanity validation of each record (version
// nibble, header length, total length); records failing it are skipped, at
// most budget of them (budget <= 0 means unlimited). Once the budget is
// exhausted, the next malformed record is returned as a
// *MalformedRecordError.
func (t *TSHReader) SetSkipMalformed(budget int) { t.enableSkip(budget) }

// recordProblem applies the skip-mode sanity checks to the captured IPv4
// header bytes, returning a non-empty reason for a malformed record.
func recordProblem(ip []byte) string {
	if v := ip[0] >> 4; v != 4 {
		return fmt.Sprintf("IP version %d, want 4", v)
	}
	if ihl := ip[0] & 0xF; ihl < 5 {
		return fmt.Sprintf("IP header length %d below minimum 5", ihl)
	}
	if tot := binary.BigEndian.Uint16(ip[2:]); tot < 20 {
		return fmt.Sprintf("IP total length %d below header size", tot)
	}
	return ""
}

// Next returns the next record, or io.EOF at the end. A trailing partial
// record is reported as a *MalformedRecordError wrapping
// io.ErrUnexpectedEOF.
func (t *TSHReader) Next() (*Packet, error) {
	for {
		recOff := t.off
		var rec [TSHRecordLen]byte
		if n, err := io.ReadFull(t.r, rec[:]); err != nil {
			if err == io.EOF {
				return nil, io.EOF
			}
			if err == io.ErrUnexpectedEOF {
				// The partial bytes were consumed from the stream, so Pos
				// must advance past them; the error still reports the
				// tracked start of the truncated record, not a recomputed
				// position.
				t.off += int64(n)
				if t.consumeSkip() {
					return nil, io.EOF
				}
				return nil, &MalformedRecordError{Format: FormatTSH, Offset: recOff,
					Reason: "truncated record", Err: err}
			}
			return nil, fmt.Errorf("trace: reading TSH record: %w", err)
		}
		t.off += TSHRecordLen
		if t.skipEnabled {
			if reason := recordProblem(rec[8:]); reason != "" {
				if t.consumeSkip() {
					continue // fixed-size records: resync is the next record
				}
				return nil, &MalformedRecordError{Format: FormatTSH, Offset: recOff, Reason: reason}
			}
		}
		sec := binary.BigEndian.Uint32(rec[0:])
		usec := binary.BigEndian.Uint32(rec[4:]) & 0x00FFFFFF
		data := make([]byte, tshHeaderBytes)
		copy(data, rec[8:])
		wire := int(binary.BigEndian.Uint16(data[2:])) // IP total length
		if wire < tshHeaderBytes {
			wire = tshHeaderBytes
		}
		return &Packet{Sec: sec, Usec: usec, Data: data, WireLen: wire}, nil
	}
}

// NextBatch implements BatchReader by repeated Next calls.
func (t *TSHReader) NextBatch(dst []*Packet) (int, error) { return readBatch(t, dst) }

// Interface extracts the capture interface number of the most recent
// record layout from raw record bytes; exposed for tooling that needs it.
func TSHInterface(rec []byte) uint8 {
	if len(rec) < 5 {
		return 0
	}
	return rec[4]
}

// TSHWriter writes the TSH format. Packets are truncated (or zero padded)
// to the 36 header bytes a record carries.
type TSHWriter struct {
	w io.Writer
	// Interface is stamped into byte 4 of each record.
	Interface uint8
}

// NewTSHWriter wraps w.
func NewTSHWriter(w io.Writer) *TSHWriter { return &TSHWriter{w: w} }

// WritePacket appends one record. Packets whose IPv4 header carries
// options cannot be represented (TSH fixes the IP header at 20 bytes) and
// are rejected.
func (t *TSHWriter) WritePacket(pkt *Packet) error {
	if len(pkt.Data) > 0 {
		ihl := pkt.Data[0] & 0xF
		if ihl > 5 {
			return fmt.Errorf("trace: TSH cannot represent IP options (IHL %d)", ihl)
		}
	}
	var rec [TSHRecordLen]byte
	binary.BigEndian.PutUint32(rec[0:], pkt.Sec)
	binary.BigEndian.PutUint32(rec[4:], pkt.Usec&0x00FFFFFF)
	rec[4] = t.Interface
	copy(rec[8:], pkt.Data) // truncates past 36 bytes
	if _, err := t.w.Write(rec[:]); err != nil {
		return fmt.Errorf("trace: writing TSH record: %w", err)
	}
	return nil
}

// ValidateIPv4 checks that a packet parses as IPv4, a convenience the
// generator and CLI use to sanity check traces.
func ValidateIPv4(p *Packet) error {
	_, err := packet.ParseIPv4(p.Data)
	return err
}
