// Compiled execution tier: trace-specialized Go closures.
//
// The block-threaded loops (threaded.go) already eliminate fetch checks
// and pre-decode operands, but every retired instruction still pays one
// trip around a dispatch switch. This file climbs the next rung: hot
// basic-block chains are lowered, at run time, into chains of
// specialized Go closures — one continuation-passing closure per
// instruction, each capturing its pre-masked register indexes, ready
// immediate, its own PC, and its static position in the chain. Between
// instructions there is no dispatch at all: a closure does its work and
// calls the next one, and the CPU and register-file pointers travel in
// machine registers through Go's register-based calling convention,
// which is as close to "guest state in host locals" as the language
// allows without emitting code.
//
// A chain is a superblock: starting from a hot block leader the builder
// follows fallthrough edges, unconditional jumps, and branches the
// verifier proved always-taken (uGOTO), crossing block boundaries until
// it meets an indirect jump, a HALT, a revisited instruction, an
// ineligible block, or the length cap. Conditional branches inside the
// chain become guards: the not-taken edge stays in the chain, the taken
// edge exits — except when the taken target is the chain head, which
// makes the branch a loop latch the runner re-enters without leaving
// the compiled tier. Verifier facts (internal/staticcheck, PR 8) elide
// the alignment and region checks of proven memory operands inside the
// region, exactly as TranslateWithFacts does for the threaded body.
//
// Every way out of a chain is a typed side-exit stub that materializes
// the full CPU state before returning to the dispatcher: the stub
// writes the exit kind, the exact number of instructions the chain
// retired (a static constant — straight-line position needs no runtime
// counter), and the continuation (validated instruction index, pending
// PC, or fault kind/PC/address) into the CPU's exit frame. Register
// writes always go straight to the architectural register file, so at
// any exit — including a mid-chain fault — the registers, the step
// count, c.PC and the fault record are bit-identical to what the
// interpreter produces at the same instruction.
//
// Selection is profile-guided, two ways. Offline: CompileConfig.Hot
// carries block leaders ranked from a recorded profile's exact PCCounts
// (internal/profile.HotBlocks), compiled eagerly. Online: the runner
// counts cold entries per block leader and promotes a block to a chain
// after PromoteAfter hits. Cold blocks run on the reference interpreter
// (CPU.Run) one block at a time — the interpreter keeps its state fully
// materialized at every instruction, so mixed-tier runs stay exact by
// construction, and a spurious per-block step-limit is re-dispatched
// rather than surfaced.
//
// Tier rules mirror the established contracts: a Tracer forces the
// threaded traced loop (per-instruction event order is pinned to the
// interpreter), and Compile refuses to build anything without verifier
// facts — an unverified (NoVerify) program can never reach the compiled
// tier, the same no-proof-no-elision line the threaded engine draws.
package vm

import (
	"encoding/binary"

	"repro/internal/isa"
)

// CompiledExitReason classifies how control left a compiled chain and
// returned to the dispatcher. The values are dense so per-reason exit
// counters live in a small array (telemetry exports them as
// compiled_exits_total{reason}).
type CompiledExitReason uint8

// Side-exit reasons.
const (
	// CexitEnd: the chain ran to its end and fell through to the next
	// instruction (block split, length cap, or ineligible successor).
	CexitEnd CompiledExitReason = iota
	// CexitLoop: a loop latch jumped back to the chain head; the runner
	// re-enters the same chain without leaving the compiled tier.
	CexitLoop
	// CexitBranch: a guard (unproven conditional branch) was taken.
	CexitBranch
	// CexitJump: a static jump (JAL or proven-always branch) left the
	// chain.
	CexitJump
	// CexitJalr: an indirect jump; the target PC needs full validation.
	CexitJalr
	// CexitHalt: the program halted inside the chain.
	CexitHalt
	// CexitFault: a checked memory access faulted mid-chain.
	CexitFault
	// CexitBudget: the runner declined to enter a chain because the
	// remaining step budget does not cover its longest path; the block
	// runs on the cold tier instead, which raises any step-limit fault
	// at the exact instruction the interpreter would.
	CexitBudget

	// NumCompiledExitReasons is the number of distinct exit reasons.
	NumCompiledExitReasons
)

var cexitNames = [NumCompiledExitReasons]string{
	"end", "loop", "branch", "jump", "jalr", "halt", "fault", "budget",
}

// String returns the telemetry label for the exit reason.
func (r CompiledExitReason) String() string {
	if r < NumCompiledExitReasons {
		return cexitNames[r]
	}
	return "unknown"
}

// cstep is one compiled instruction: do the work, then either call the
// captured continuation or write a side exit into c's frame and return.
// The CPU and register-file pointers are threaded through the calls as
// arguments — Go's register ABI keeps both in machine registers across
// the whole chain, so the hot closures touch memory only for the guest
// accesses themselves.
type cstep func(c *CPU, regs *[isa.NumRegs]uint32)

// cframe is the typed side-exit record exactly one terminal stub writes
// per chain run, on its way back to runCompiled. It lives inside the
// CPU so entering a chain allocates nothing.
type cframe struct {
	kind  CompiledExitReason
	pos   uint32 // instructions the chain retired, incl. the exiting one
	idx   int32  // validated next instruction index, or -1
	pcv   uint32 // pending PC when idx < 0; the HALT's own PC for CexitHalt
	fkind FaultKind
	fpc   uint32
	faddr uint32
}

// chain is one compiled superblock, entered only at its head.
type chain struct {
	// n is the chain's longest path in retired instructions (the
	// straight-line path: every side exit retires at most n). The runner
	// enters only when the remaining budget covers n, so compiled code
	// never needs a step-budget check between instructions.
	n     uint32
	entry cstep
}

// DefaultPromoteAfter is the online promotion threshold: a block whose
// leader the cold tier has entered this many times is compiled on the
// spot. Low enough that a per-packet hot loop is promoted within the
// first packets of a run, high enough that straight-line glue code
// stays on the cold tier where it costs nothing to skip.
const DefaultPromoteAfter = 16

// maxChainLen caps the number of compiled closures per chain. Chains
// are entered only when the step budget covers their full length, so an
// over-long chain would starve near-budget runs into the cold tier;
// 128 covers every loop body in the bundled apps several times over.
const maxChainLen = 128

// CompileConfig selects which blocks the compiler specializes.
type CompileConfig struct {
	// Hot lists instruction indexes of block leaders to compile eagerly
	// — offline profile-guided selection, typically the top blocks of a
	// recorded profile ranked by internal/profile.HotBlocks. Entries
	// that are not leaders of eligible blocks are ignored.
	Hot []int32
	// PromoteAfter is the online promotion threshold in block entries.
	// Zero selects DefaultPromoteAfter; a negative value disables
	// online promotion entirely (offline Hot list only).
	PromoteAfter int
}

// CompiledStats summarizes compiled-tier activity for telemetry.
type CompiledStats struct {
	// BlocksCompiled counts blocks whose leader roots a compiled chain
	// (offline and online promotions both).
	BlocksCompiled uint64
	// Exits counts chain side exits by reason, CexitLoop included (one
	// count per loop iteration that stayed in the compiled tier).
	Exits [NumCompiledExitReasons]uint64
}

// CompiledProgram is a Program plus its compiled-tier state: chains
// rooted at hot block leaders, online promotion counters, and exit
// statistics. Unlike a Program it is mutable at run time (online
// promotion installs new chains, the runner bumps counters), so a
// CompiledProgram must not be shared between CPUs — each core compiles
// its own, the same way each core owns its CPU.
type CompiledProgram struct {
	p     *Program
	facts *TranslationFacts
	// chains[i] is the compiled superblock rooted at instruction i, nil
	// for everything that is not a compiled leader.
	chains []*chain
	// counts[b] is the cold-tier entry count of block b's leader;
	// tried[b] marks blocks already compiled or found ineligible.
	counts  []uint32
	tried   []bool
	promote uint32
	online  bool
	stats   CompiledStats
}

// Compile builds the compiled execution tier for a translated program.
// facts must carry the verifier's proof for this exact program: the
// compiled tier exists only for verified programs, so a nil facts
// refuses to compile (callers fall back to the threaded engine — the
// same no-proof-no-elision contract the fused translator enforces).
// cfg.Hot seeds eager chains; everything else is promoted online.
func Compile(p *Program, facts *TranslationFacts, cfg CompileConfig) *CompiledProgram {
	if p == nil || facts == nil || len(p.ops) == 0 {
		return nil
	}
	cp := &CompiledProgram{
		p:      p,
		facts:  facts,
		chains: make([]*chain, len(p.ops)),
		counts: make([]uint32, p.NumBlocks()),
		tried:  make([]bool, p.NumBlocks()),
		online: cfg.PromoteAfter >= 0,
	}
	promote := cfg.PromoteAfter
	if promote <= 0 {
		promote = DefaultPromoteAfter
	}
	cp.promote = uint32(promote)
	for _, h := range cfg.Hot {
		if h >= 0 && int(h) < len(p.ops) {
			cp.compileAt(h)
		}
	}
	return cp
}

// Program returns the underlying translated program.
func (cp *CompiledProgram) Program() *Program { return cp.p }

// Stats returns a snapshot of the compiled-tier statistics.
func (cp *CompiledProgram) Stats() CompiledStats { return cp.stats }

// compileAt builds and installs the chain rooted at instruction idx.
// It reports whether a chain is installed there (pre-existing included).
func (cp *CompiledProgram) compileAt(idx int32) bool {
	if cp.chains[idx] != nil {
		return true
	}
	b := cp.p.blockOf[idx]
	if cp.p.leader[b] != idx {
		return false
	}
	if cp.facts.deadAt(int(b)) || !cp.facts.chainOKAt(int(b)) {
		return false
	}
	ch := cp.buildChain(int(idx))
	if ch == nil {
		return false
	}
	cp.chains[idx] = ch
	cp.stats.BlocksCompiled++
	return true
}

// chainOp returns instruction i's micro-op with the facts rewrites the
// fused translator applies — unchecked memory ops, folded branches,
// elided masks — independent of whether the threaded body kept fusion.
func chainOp(p *Program, facts *TranslationFacts, i int) microOp {
	op := p.ops[i]
	switch op.code {
	case uLB, uLBU, uLH, uLHU, uLW:
		if r := facts.memAt(i); r != RegionNone {
			if op.rd == 0 {
				// Cannot fault, cannot write: architecturally inert.
				return microOp{code: uNOP}
			}
			op.code = op.code - uLB + uULB
			op.rs2 = uint8(r)
		}
	case uSB, uSH, uSW:
		if r := facts.memAt(i); r != RegionNone {
			op.code = op.code - uSB + uUSB
			op.rs2 = uint8(r)
		}
	case uAND, uANDI:
		if facts.redundantAt(i) {
			if op.rd == op.rs1 {
				return microOp{code: uNOP}
			}
			return microOp{code: uADDI, rd: op.rd, rs1: op.rs1}
		}
	case uBEQ, uBNE, uBLT, uBGE, uBLTU, uBGEU:
		switch facts.branchAt(i) {
		case BranchNever:
			return microOp{code: uNOP}
		case BranchAlways:
			op.code = uGOTO
		}
	}
	return op
}

// Roles a chain slot can play; they select the closure shape.
const (
	roleOp       uint8 = iota // straight-line op, continues to the next slot
	roleLink                  // JAL link write, jump target continues the chain
	roleGuard                 // conditional branch: taken edge exits (or latches)
	roleGuardInv              // unrolled latch copy: taken edge continues, fall-through exits
	roleJump                  // unconditional exit (JAL/uGOTO leaving the chain)
	roleJalr                  // indirect jump: dynamic target, always exits
	roleHalt
)

// Slot fusion kinds: adjacent non-faulting slots merged into one closure
// (the compiled tier's superinstructions — same philosophy as the
// threaded fuser's pair tables, specialized at build time so the merged
// closure has no inner dispatch).
const (
	fkNone     uint8 = iota
	fkLdAlu          // unchecked word load + ALU
	fkAluAlu         // hot ALU pair
	fkAluSt          // ALU + unchecked word store
	fkAluGuard       // ALU + conditional branch (counted-loop latches)
)

// cslot is one instruction of a chain during building, with everything
// the closure factory needs captured statically.
type cslot struct {
	op   microOp
	op2  microOp // second component when fk != fkNone
	fk   uint8
	pc   uint32
	pos  uint32 // instructions retired through this op on the chain path
	role uint8
	link bool               // roleJump: also write the JAL link register
	kind CompiledExitReason // exit kind for roleGuard/roleJump
	tIdx int32              // validated taken/jump target index, or -1
	tPcv uint32             // pending PC when tIdx < 0
}

// buildChain lowers the superblock rooted at head into a closure chain,
// or returns nil when nothing can be compiled there (the head retires
// zero instructions on every path — e.g. an undecodable instruction).
func (cp *CompiledProgram) buildChain(head int) *chain {
	p, facts := cp.p, cp.facts
	n := len(p.ops)
	seen := make([]bool, n)
	slots := make([]cslot, 0, 16)
	pos := uint32(0)
	i := head
	needEnd := false

walk:
	for {
		if i >= n || seen[i] || len(slots) >= maxChainLen {
			needEnd = true
			break
		}
		if b := int(p.blockOf[i]); facts.deadAt(b) || !facts.chainOKAt(b) {
			// Facts claim nothing about dead blocks and the verifier
			// withheld chain eligibility: leave it to the checked tiers.
			needEnd = true
			break
		}
		op := chainOp(p, facts, i)
		pc := p.textBase + uint32(i)*isa.WordSize
		seen[i] = true
		switch {
		case op.code == uNOP:
			// Retires but has no effect and cannot fault: the chain
			// carries it as a position bump, not a closure.
			pos++
			i++
		case op.code == uGOTO || op.code == uJAL:
			pos++
			link := op.code == uJAL && op.rd != 0
			if t := op.aux; t >= 0 && int(t) == head {
				// Unconditional loop latch back to the chain head.
				slots = append(slots, cslot{op: op, pc: pc, pos: pos,
					role: roleJump, link: link, kind: CexitLoop, tIdx: t})
				break walk
			} else if t >= 0 && !seen[int(t)] {
				// Follow the jump: the chain continues at the target.
				if link {
					slots = append(slots, cslot{op: op, pc: pc, pos: pos, role: roleLink})
				}
				i = int(t)
			} else {
				// Out of text, to ReturnAddress, or back into the chain:
				// exit with the statically resolved continuation.
				ti, tp := branchTo(&op, pc)
				slots = append(slots, cslot{op: op, pc: pc, pos: pos,
					role: roleJump, link: link, kind: CexitJump, tIdx: int32(ti), tPcv: tp})
				break walk
			}
		case isBranchCode(op.code):
			pos++
			ti, tp := branchTo(&op, pc)
			s := cslot{op: op, pc: pc, pos: pos, role: roleGuard,
				kind: CexitBranch, tIdx: int32(ti), tPcv: tp}
			if ti >= 0 && ti == head {
				// Loop latch: taken re-enters the chain via the runner.
				s.kind = CexitLoop
			}
			slots = append(slots, s)
			i++
		case op.code == uJALR:
			pos++
			slots = append(slots, cslot{op: op, pc: pc, pos: pos, role: roleJalr})
			break walk
		case op.code == uHALT:
			pos++
			slots = append(slots, cslot{op: op, pc: pc, pos: pos, role: roleHalt})
			break walk
		case op.code == uBAD:
			// Undecodable: leave it to the fully-checked tiers.
			needEnd = true
			break walk
		default:
			pos++
			slots = append(slots, cslot{op: op, pc: pc, pos: pos, role: roleOp})
			i++
		}
	}
	if pos == 0 {
		// The chain retires nothing (head is undecodable or ineligible):
		// entering it would make no progress, so don't build it.
		return nil
	}

	// Merge adjacent non-faulting slots into superinstruction closures,
	// then unroll a conditional loop latch so the dispatcher round-trip
	// amortizes over several iterations.
	slots = fuseSlots(slots)
	slots, pos = unrollLatch(slots, pos, n, p.textBase)

	// Assemble the closures back to front, so each factory captures its
	// already-built continuation.
	var next cstep
	if needEnd {
		endPos := pos
		eIdx, ePcv := int32(i), uint32(0)
		if i >= n {
			// Fell through past the last instruction: the slow path
			// raises FaultBadFetch at the first out-of-text PC, exactly
			// like the threaded epilogue.
			eIdx, ePcv = -1, p.textBase+uint32(n)*isa.WordSize
		}
		next = func(c *CPU, regs *[isa.NumRegs]uint32) {
			c.cframe.kind, c.cframe.pos, c.cframe.idx, c.cframe.pcv = CexitEnd, endPos, eIdx, ePcv
		}
	}
	for k := len(slots) - 1; k >= 0; k-- {
		if slots[k].fk != fkNone {
			next = makeFusedStep(&slots[k], next)
		} else {
			next = makeStep(&slots[k], next)
		}
	}
	return &chain{n: pos, entry: next}
}

// aluFusable marks the ALU codes the fused closure factory specializes
// as the partner of a load or store component. Sized over the whole
// code range a chain slot can carry — chainOp rewrites proven memory
// ops to the unchecked codes (uULW..uUSW) and folded branches to uGOTO,
// all past uBAD, and those must index as false, not out of range.
var aluFusable = [uGOTO + 1]bool{
	uADD: true, uSUB: true, uAND: true, uOR: true, uXOR: true,
	uADDI: true, uANDI: true, uORI: true, uXORI: true,
}

// aluPairs is the set of hot ALU+ALU pairs with a specialized fused
// closure — the counted-loop and hash-mix idioms the guest profiler
// shows hottest, the same selection philosophy as the threaded fuser's
// fuseAA table.
var aluPairs = map[[2]uint8]bool{
	{uANDI, uADD}: true, {uADD, uXOR}: true, {uXOR, uADD}: true,
	{uAND, uADD}: true, {uADD, uADDI}: true, {uADDI, uADDI}: true,
	{uSLLI, uOR}: true, {uSRLI, uANDI}: true,
}

// fuseKind classifies an adjacent slot pair for fusion, fkNone when the
// pair has no specialized closure. Only non-faulting first components
// are ever fused: a fused slot carries one exit position (the second
// op's), so the first op must not be able to side-exit on its own.
func fuseKind(a, b *cslot) uint8 {
	if a.role != roleOp {
		return fkNone
	}
	ac, bc := a.op.code, b.op.code
	switch b.role {
	case roleOp:
		switch {
		case ac == uULW && aluFusable[bc]:
			return fkLdAlu
		case bc == uUSW && aluFusable[ac]:
			return fkAluSt
		case aluPairs[[2]uint8{ac, bc}]:
			return fkAluAlu
		}
	case roleGuard:
		if ac == uADDI {
			return fkAluGuard
		}
	}
	return fkNone
}

// fuseSlots merges adjacent slot pairs with specialized fused closures,
// greedily left to right (the same order the threaded fuser consumes
// its stream). The merged slot keeps the second op's exit metadata.
func fuseSlots(slots []cslot) []cslot {
	out := make([]cslot, 0, len(slots))
	for k := 0; k < len(slots); k++ {
		if k+1 < len(slots) {
			if fk := fuseKind(&slots[k], &slots[k+1]); fk != fkNone {
				m := slots[k+1]
				m.op, m.op2, m.fk = slots[k].op, slots[k+1].op, fk
				out = append(out, m)
				k++
				continue
			}
		}
		out = append(out, slots[k])
	}
	return out
}

// latchUnroll is how many loop iterations an unrolled chain runs per
// dispatcher entry, and latchUnrollMax caps the unrolled body so the
// budget pre-check (which must cover the whole chain) cannot starve
// short-budget runs into the cold tier.
const (
	latchUnroll    = 4
	latchUnrollMax = 256
)

// unrollLatch unrolls a chain whose body closes with a conditional loop
// latch: the body is replicated latchUnroll-1 times with the latch
// inverted (taken falls through to the next copy inline; not-taken —
// loop done — side-exits to the latch's fall-through), followed by the
// original chain with the real latch, so one dispatcher entry retires
// up to latchUnroll iterations. Exit positions are rebased per copy;
// every side exit still reports the exact retire count.
func unrollLatch(slots []cslot, pos uint32, ntext int, textBase uint32) ([]cslot, uint32) {
	last := -1
	for k := range slots {
		if slots[k].kind == CexitLoop && slots[k].role == roleGuard {
			last = k
		}
	}
	if last < 0 {
		return slots, pos
	}
	span := slots[last].pos
	if span == 0 || uint64(span)*latchUnroll > latchUnrollMax {
		return slots, pos
	}
	// The latch's fall-through continuation, for the inverted copies.
	fpc := slots[last].pc + isa.WordSize
	fIdx := int32(-1)
	if off := fpc - textBase; off/isa.WordSize < uint32(ntext) {
		fIdx = int32(off / isa.WordSize)
	}
	out := make([]cslot, 0, (last+1)*(latchUnroll-1)+len(slots))
	for u := 0; u < latchUnroll-1; u++ {
		base := uint32(u) * span
		for k := 0; k <= last; k++ {
			s := slots[k]
			s.pos += base
			if k == last {
				s.role = roleGuardInv
				s.kind = CexitBranch
				s.tIdx = fIdx
				s.tPcv = fpc
			}
			out = append(out, s)
		}
	}
	base := uint32(latchUnroll-1) * span
	for k := range slots {
		s := slots[k]
		s.pos += base
		out = append(out, s)
	}
	return out, pos + base
}

// makeStep builds the specialized closure for one chain slot. Every
// operand the closure needs is captured as a local here — register
// indexes pre-masked at translation time (re-masked with &15 at the use
// sites to drop the register-file bounds checks), the ready immediate,
// the slot's own PC and static retire position — so the closure bodies
// do pure data flow: no decoding, no dispatch, no allocation, and no
// step accounting until a side exit writes its static position.
func makeStep(s *cslot, nx cstep) cstep {
	op := s.op
	rd, rs1, rs2 := op.rd, op.rs1, op.rs2
	imm := op.imm
	pc := s.pc
	epos := s.pos
	kind := s.kind
	tIdx, tPcv := s.tIdx, s.tPcv

	switch s.role {
	case roleHalt:
		return func(c *CPU, regs *[isa.NumRegs]uint32) {
			c.cframe.kind, c.cframe.pos, c.cframe.pcv = CexitHalt, epos, pc
		}
	case roleJalr:
		lpc := pc + isa.WordSize
		return func(c *CPU, regs *[isa.NumRegs]uint32) {
			t := (regs[rs1&15] + imm) &^ 3
			if rd != 0 {
				regs[rd&15] = lpc
			}
			c.cframe.kind, c.cframe.pos, c.cframe.idx, c.cframe.pcv = CexitJalr, epos, -1, t
		}
	case roleJump:
		if s.link {
			lpc := pc + isa.WordSize
			return func(c *CPU, regs *[isa.NumRegs]uint32) {
				regs[rd&15] = lpc
				c.cframe.kind, c.cframe.pos, c.cframe.idx, c.cframe.pcv = kind, epos, tIdx, tPcv
			}
		}
		return func(c *CPU, regs *[isa.NumRegs]uint32) {
			c.cframe.kind, c.cframe.pos, c.cframe.idx, c.cframe.pcv = kind, epos, tIdx, tPcv
		}
	case roleLink:
		lpc := pc + isa.WordSize
		return func(c *CPU, regs *[isa.NumRegs]uint32) { regs[rd&15] = lpc; nx(c, regs) }
	case roleGuard:
		switch op.code {
		case uBEQ:
			return func(c *CPU, regs *[isa.NumRegs]uint32) {
				if regs[rs1&15] == regs[rs2&15] {
					c.cframe.kind, c.cframe.pos, c.cframe.idx, c.cframe.pcv = kind, epos, tIdx, tPcv
					return
				}
				nx(c, regs)
			}
		case uBNE:
			return func(c *CPU, regs *[isa.NumRegs]uint32) {
				if regs[rs1&15] != regs[rs2&15] {
					c.cframe.kind, c.cframe.pos, c.cframe.idx, c.cframe.pcv = kind, epos, tIdx, tPcv
					return
				}
				nx(c, regs)
			}
		case uBLT:
			return func(c *CPU, regs *[isa.NumRegs]uint32) {
				if int32(regs[rs1&15]) < int32(regs[rs2&15]) {
					c.cframe.kind, c.cframe.pos, c.cframe.idx, c.cframe.pcv = kind, epos, tIdx, tPcv
					return
				}
				nx(c, regs)
			}
		case uBGE:
			return func(c *CPU, regs *[isa.NumRegs]uint32) {
				if int32(regs[rs1&15]) >= int32(regs[rs2&15]) {
					c.cframe.kind, c.cframe.pos, c.cframe.idx, c.cframe.pcv = kind, epos, tIdx, tPcv
					return
				}
				nx(c, regs)
			}
		case uBLTU:
			return func(c *CPU, regs *[isa.NumRegs]uint32) {
				if regs[rs1&15] < regs[rs2&15] {
					c.cframe.kind, c.cframe.pos, c.cframe.idx, c.cframe.pcv = kind, epos, tIdx, tPcv
					return
				}
				nx(c, regs)
			}
		case uBGEU:
			return func(c *CPU, regs *[isa.NumRegs]uint32) {
				if regs[rs1&15] >= regs[rs2&15] {
					c.cframe.kind, c.cframe.pos, c.cframe.idx, c.cframe.pcv = kind, epos, tIdx, tPcv
					return
				}
				nx(c, regs)
			}
		}
	case roleGuardInv:
		// Unrolled latch copy: the taken edge continues inline into the
		// next body copy; not-taken (loop done) exits to the latch's
		// fall-through, carried in tIdx/tPcv.
		switch op.code {
		case uBEQ:
			return func(c *CPU, regs *[isa.NumRegs]uint32) {
				if regs[rs1&15] == regs[rs2&15] {
					nx(c, regs)
					return
				}
				c.cframe.kind, c.cframe.pos, c.cframe.idx, c.cframe.pcv = kind, epos, tIdx, tPcv
			}
		case uBNE:
			return func(c *CPU, regs *[isa.NumRegs]uint32) {
				if regs[rs1&15] != regs[rs2&15] {
					nx(c, regs)
					return
				}
				c.cframe.kind, c.cframe.pos, c.cframe.idx, c.cframe.pcv = kind, epos, tIdx, tPcv
			}
		case uBLT:
			return func(c *CPU, regs *[isa.NumRegs]uint32) {
				if int32(regs[rs1&15]) < int32(regs[rs2&15]) {
					nx(c, regs)
					return
				}
				c.cframe.kind, c.cframe.pos, c.cframe.idx, c.cframe.pcv = kind, epos, tIdx, tPcv
			}
		case uBGE:
			return func(c *CPU, regs *[isa.NumRegs]uint32) {
				if int32(regs[rs1&15]) >= int32(regs[rs2&15]) {
					nx(c, regs)
					return
				}
				c.cframe.kind, c.cframe.pos, c.cframe.idx, c.cframe.pcv = kind, epos, tIdx, tPcv
			}
		case uBLTU:
			return func(c *CPU, regs *[isa.NumRegs]uint32) {
				if regs[rs1&15] < regs[rs2&15] {
					nx(c, regs)
					return
				}
				c.cframe.kind, c.cframe.pos, c.cframe.idx, c.cframe.pcv = kind, epos, tIdx, tPcv
			}
		case uBGEU:
			return func(c *CPU, regs *[isa.NumRegs]uint32) {
				if regs[rs1&15] >= regs[rs2&15] {
					nx(c, regs)
					return
				}
				c.cframe.kind, c.cframe.pos, c.cframe.idx, c.cframe.pcv = kind, epos, tIdx, tPcv
			}
		}
	}

	// roleOp: straight-line ALU and memory closures.
	switch op.code {
	case uADD:
		return func(c *CPU, regs *[isa.NumRegs]uint32) {
			regs[rd&15] = regs[rs1&15] + regs[rs2&15]
			nx(c, regs)
		}
	case uSUB:
		return func(c *CPU, regs *[isa.NumRegs]uint32) {
			regs[rd&15] = regs[rs1&15] - regs[rs2&15]
			nx(c, regs)
		}
	case uAND:
		return func(c *CPU, regs *[isa.NumRegs]uint32) {
			regs[rd&15] = regs[rs1&15] & regs[rs2&15]
			nx(c, regs)
		}
	case uOR:
		return func(c *CPU, regs *[isa.NumRegs]uint32) {
			regs[rd&15] = regs[rs1&15] | regs[rs2&15]
			nx(c, regs)
		}
	case uXOR:
		return func(c *CPU, regs *[isa.NumRegs]uint32) {
			regs[rd&15] = regs[rs1&15] ^ regs[rs2&15]
			nx(c, regs)
		}
	case uSLL:
		return func(c *CPU, regs *[isa.NumRegs]uint32) {
			regs[rd&15] = regs[rs1&15] << (regs[rs2&15] & 31)
			nx(c, regs)
		}
	case uSRL:
		return func(c *CPU, regs *[isa.NumRegs]uint32) {
			regs[rd&15] = regs[rs1&15] >> (regs[rs2&15] & 31)
			nx(c, regs)
		}
	case uSRA:
		return func(c *CPU, regs *[isa.NumRegs]uint32) {
			regs[rd&15] = uint32(int32(regs[rs1&15]) >> (regs[rs2&15] & 31))
			nx(c, regs)
		}
	case uSLT:
		return func(c *CPU, regs *[isa.NumRegs]uint32) {
			regs[rd&15] = b2u(int32(regs[rs1&15]) < int32(regs[rs2&15]))
			nx(c, regs)
		}
	case uSLTU:
		return func(c *CPU, regs *[isa.NumRegs]uint32) {
			regs[rd&15] = b2u(regs[rs1&15] < regs[rs2&15])
			nx(c, regs)
		}
	case uMUL:
		return func(c *CPU, regs *[isa.NumRegs]uint32) {
			regs[rd&15] = regs[rs1&15] * regs[rs2&15]
			nx(c, regs)
		}
	case uADDI:
		return func(c *CPU, regs *[isa.NumRegs]uint32) {
			regs[rd&15] = regs[rs1&15] + imm
			nx(c, regs)
		}
	case uANDI:
		return func(c *CPU, regs *[isa.NumRegs]uint32) {
			regs[rd&15] = regs[rs1&15] & imm
			nx(c, regs)
		}
	case uORI:
		return func(c *CPU, regs *[isa.NumRegs]uint32) {
			regs[rd&15] = regs[rs1&15] | imm
			nx(c, regs)
		}
	case uXORI:
		return func(c *CPU, regs *[isa.NumRegs]uint32) {
			regs[rd&15] = regs[rs1&15] ^ imm
			nx(c, regs)
		}
	case uSLLI:
		sh := imm & 31
		return func(c *CPU, regs *[isa.NumRegs]uint32) {
			regs[rd&15] = regs[rs1&15] << sh
			nx(c, regs)
		}
	case uSRLI:
		sh := imm & 31
		return func(c *CPU, regs *[isa.NumRegs]uint32) {
			regs[rd&15] = regs[rs1&15] >> sh
			nx(c, regs)
		}
	case uSRAI:
		sh := imm & 31
		return func(c *CPU, regs *[isa.NumRegs]uint32) {
			regs[rd&15] = uint32(int32(regs[rs1&15]) >> sh)
			nx(c, regs)
		}
	case uSLTI:
		si := int32(imm)
		return func(c *CPU, regs *[isa.NumRegs]uint32) {
			regs[rd&15] = b2u(int32(regs[rs1&15]) < si)
			nx(c, regs)
		}
	case uSLTIU:
		return func(c *CPU, regs *[isa.NumRegs]uint32) {
			regs[rd&15] = b2u(regs[rs1&15] < imm)
			nx(c, regs)
		}
	case uLI:
		return func(c *CPU, regs *[isa.NumRegs]uint32) {
			regs[rd&15] = imm
			nx(c, regs)
		}

	// Unchecked loads: the verifier proved alignment and region, so the
	// closure is a bare page-cache read (rd != 0 by construction — the
	// inert case became uNOP in chainOp).
	case uULB:
		return func(c *CPU, regs *[isa.NumRegs]uint32) {
			regs[rd&15] = uint32(int32(int8(c.cachedRead8(regs[rs1&15] + imm))))
			nx(c, regs)
		}
	case uULBU:
		return func(c *CPU, regs *[isa.NumRegs]uint32) {
			regs[rd&15] = uint32(c.cachedRead8(regs[rs1&15] + imm))
			nx(c, regs)
		}
	case uULH:
		return func(c *CPU, regs *[isa.NumRegs]uint32) {
			regs[rd&15] = uint32(int32(int16(c.cachedRead16(regs[rs1&15] + imm))))
			nx(c, regs)
		}
	case uULHU:
		return func(c *CPU, regs *[isa.NumRegs]uint32) {
			regs[rd&15] = uint32(c.cachedRead16(regs[rs1&15] + imm))
			nx(c, regs)
		}
	case uULW:
		return func(c *CPU, regs *[isa.NumRegs]uint32) {
			regs[rd&15] = c.cachedRead32(regs[rs1&15] + imm)
			nx(c, regs)
		}

	// Unchecked stores: proven region travels in rs2; only packet-region
	// stores owe the dirty-high watermark.
	case uUSB:
		if Region(rs2) == RegionPacket {
			return func(c *CPU, regs *[isa.NumRegs]uint32) {
				addr := regs[rs1&15] + imm
				if addr+1 > c.packetWriteHigh {
					c.packetWriteHigh = addr + 1
				}
				c.cachedPage(addr)[addr&(pageSize-1)] = uint8(regs[rd&15])
				nx(c, regs)
			}
		}
		return func(c *CPU, regs *[isa.NumRegs]uint32) {
			addr := regs[rs1&15] + imm
			c.cachedPage(addr)[addr&(pageSize-1)] = uint8(regs[rd&15])
			nx(c, regs)
		}
	case uUSH:
		if Region(rs2) == RegionPacket {
			return func(c *CPU, regs *[isa.NumRegs]uint32) {
				addr := regs[rs1&15] + imm
				if addr+2 > c.packetWriteHigh {
					c.packetWriteHigh = addr + 2
				}
				o := addr & (pageSize - 1)
				pg := c.cachedPage(addr)
				binary.LittleEndian.PutUint16(pg[o:o+2:o+2], uint16(regs[rd&15]))
				nx(c, regs)
			}
		}
		return func(c *CPU, regs *[isa.NumRegs]uint32) {
			addr := regs[rs1&15] + imm
			o := addr & (pageSize - 1)
			pg := c.cachedPage(addr)
			binary.LittleEndian.PutUint16(pg[o:o+2:o+2], uint16(regs[rd&15]))
			nx(c, regs)
		}
	case uUSW:
		if Region(rs2) == RegionPacket {
			return func(c *CPU, regs *[isa.NumRegs]uint32) {
				addr := regs[rs1&15] + imm
				if addr+4 > c.packetWriteHigh {
					c.packetWriteHigh = addr + 4
				}
				o := addr & (pageSize - 1)
				pg := c.cachedPage(addr)
				binary.LittleEndian.PutUint32(pg[o:o+4:o+4], regs[rd&15])
				nx(c, regs)
			}
		}
		return func(c *CPU, regs *[isa.NumRegs]uint32) {
			addr := regs[rs1&15] + imm
			o := addr & (pageSize - 1)
			pg := c.cachedPage(addr)
			binary.LittleEndian.PutUint32(pg[o:o+4:o+4], regs[rd&15])
			nx(c, regs)
		}

	// Checked loads: unproven operands keep the interpreter's exact
	// fault checks; a failure is a typed side exit with the full fault
	// record (the runner materializes the *Fault so the closure body
	// stays allocation-free).
	case uLB:
		return func(c *CPU, regs *[isa.NumRegs]uint32) {
			addr := regs[rs1&15] + imm
			if r := c.Layout.Classify(addr); r == RegionNone || r == RegionText {
				c.cframe = cframe{kind: CexitFault, pos: epos, fkind: FaultUnmapped, fpc: pc, faddr: addr}
				return
			}
			if rd != 0 {
				regs[rd&15] = uint32(int32(int8(c.cachedRead8(addr))))
			}
			nx(c, regs)
		}
	case uLBU:
		return func(c *CPU, regs *[isa.NumRegs]uint32) {
			addr := regs[rs1&15] + imm
			if r := c.Layout.Classify(addr); r == RegionNone || r == RegionText {
				c.cframe = cframe{kind: CexitFault, pos: epos, fkind: FaultUnmapped, fpc: pc, faddr: addr}
				return
			}
			if rd != 0 {
				regs[rd&15] = uint32(c.cachedRead8(addr))
			}
			nx(c, regs)
		}
	case uLH:
		return func(c *CPU, regs *[isa.NumRegs]uint32) {
			addr := regs[rs1&15] + imm
			if addr&1 != 0 {
				c.cframe = cframe{kind: CexitFault, pos: epos, fkind: FaultUnaligned, fpc: pc, faddr: addr}
				return
			}
			if r := c.Layout.Classify(addr); r == RegionNone || r == RegionText {
				c.cframe = cframe{kind: CexitFault, pos: epos, fkind: FaultUnmapped, fpc: pc, faddr: addr}
				return
			}
			if rd != 0 {
				regs[rd&15] = uint32(int32(int16(c.cachedRead16(addr))))
			}
			nx(c, regs)
		}
	case uLHU:
		return func(c *CPU, regs *[isa.NumRegs]uint32) {
			addr := regs[rs1&15] + imm
			if addr&1 != 0 {
				c.cframe = cframe{kind: CexitFault, pos: epos, fkind: FaultUnaligned, fpc: pc, faddr: addr}
				return
			}
			if r := c.Layout.Classify(addr); r == RegionNone || r == RegionText {
				c.cframe = cframe{kind: CexitFault, pos: epos, fkind: FaultUnmapped, fpc: pc, faddr: addr}
				return
			}
			if rd != 0 {
				regs[rd&15] = uint32(c.cachedRead16(addr))
			}
			nx(c, regs)
		}
	case uLW:
		return func(c *CPU, regs *[isa.NumRegs]uint32) {
			addr := regs[rs1&15] + imm
			if addr&3 != 0 {
				c.cframe = cframe{kind: CexitFault, pos: epos, fkind: FaultUnaligned, fpc: pc, faddr: addr}
				return
			}
			if r := c.Layout.Classify(addr); r == RegionNone || r == RegionText {
				c.cframe = cframe{kind: CexitFault, pos: epos, fkind: FaultUnmapped, fpc: pc, faddr: addr}
				return
			}
			if rd != 0 {
				regs[rd&15] = c.cachedRead32(addr)
			}
			nx(c, regs)
		}

	// Checked stores.
	case uSB:
		return func(c *CPU, regs *[isa.NumRegs]uint32) {
			addr := regs[rs1&15] + imm
			region := c.Layout.Classify(addr)
			if region == RegionText || region == RegionNone {
				c.cframe = cframe{kind: CexitFault, pos: epos, fkind: storeFaultKind(region), fpc: pc, faddr: addr}
				return
			}
			if region == RegionPacket && addr+1 > c.packetWriteHigh {
				c.packetWriteHigh = addr + 1
			}
			c.cachedPage(addr)[addr&(pageSize-1)] = uint8(regs[rd&15])
			nx(c, regs)
		}
	case uSH:
		return func(c *CPU, regs *[isa.NumRegs]uint32) {
			addr := regs[rs1&15] + imm
			if addr&1 != 0 {
				c.cframe = cframe{kind: CexitFault, pos: epos, fkind: FaultUnaligned, fpc: pc, faddr: addr}
				return
			}
			region := c.Layout.Classify(addr)
			if region == RegionText || region == RegionNone {
				c.cframe = cframe{kind: CexitFault, pos: epos, fkind: storeFaultKind(region), fpc: pc, faddr: addr}
				return
			}
			if region == RegionPacket && addr+2 > c.packetWriteHigh {
				c.packetWriteHigh = addr + 2
			}
			o := addr & (pageSize - 1)
			pg := c.cachedPage(addr)
			binary.LittleEndian.PutUint16(pg[o:o+2:o+2], uint16(regs[rd&15]))
			nx(c, regs)
		}
	case uSW:
		return func(c *CPU, regs *[isa.NumRegs]uint32) {
			addr := regs[rs1&15] + imm
			if addr&3 != 0 {
				c.cframe = cframe{kind: CexitFault, pos: epos, fkind: FaultUnaligned, fpc: pc, faddr: addr}
				return
			}
			region := c.Layout.Classify(addr)
			if region == RegionText || region == RegionNone {
				c.cframe = cframe{kind: CexitFault, pos: epos, fkind: storeFaultKind(region), fpc: pc, faddr: addr}
				return
			}
			if region == RegionPacket && addr+4 > c.packetWriteHigh {
				c.packetWriteHigh = addr + 4
			}
			o := addr & (pageSize - 1)
			pg := c.cachedPage(addr)
			binary.LittleEndian.PutUint32(pg[o:o+4:o+4], regs[rd&15])
			nx(c, regs)
		}
	}

	// Unreachable: the walk terminates every chain at control ops and
	// undecodable instructions before they could land here. Keep the
	// checked tiers' behavior for safety anyway.
	return func(c *CPU, regs *[isa.NumRegs]uint32) {
		c.cframe = cframe{kind: CexitFault, pos: epos, fkind: FaultBadInstr, fpc: pc}
	}
}

// makeFusedStep builds the single closure for a fused slot pair. Every
// component combination is specialized here at build time — a fused
// closure has no inner dispatch — and a combination without a case
// decomposes back into its two single-op closures, so fuseKind and this
// factory cannot drift apart observably.
func makeFusedStep(s *cslot, nx cstep) cstep {
	a, b := s.op, s.op2
	rd, rs1, rs2 := a.rd, a.rs1, a.rs2
	imm := a.imm
	rd2, rs3, rs4 := b.rd, b.rs1, b.rs2
	imm2 := b.imm
	epos := s.pos
	kind := s.kind
	tIdx, tPcv := s.tIdx, s.tPcv

	switch s.fk {
	case fkLdAlu:
		// a: proven word load, b: ALU (any operands — the pair executes
		// strictly in sequence, so overlap needs no special casing).
		switch b.code {
		case uADD:
			return func(c *CPU, regs *[isa.NumRegs]uint32) {
				regs[rd&15] = c.cachedRead32(regs[rs1&15] + imm)
				regs[rd2&15] = regs[rs3&15] + regs[rs4&15]
				nx(c, regs)
			}
		case uSUB:
			return func(c *CPU, regs *[isa.NumRegs]uint32) {
				regs[rd&15] = c.cachedRead32(regs[rs1&15] + imm)
				regs[rd2&15] = regs[rs3&15] - regs[rs4&15]
				nx(c, regs)
			}
		case uAND:
			return func(c *CPU, regs *[isa.NumRegs]uint32) {
				regs[rd&15] = c.cachedRead32(regs[rs1&15] + imm)
				regs[rd2&15] = regs[rs3&15] & regs[rs4&15]
				nx(c, regs)
			}
		case uOR:
			return func(c *CPU, regs *[isa.NumRegs]uint32) {
				regs[rd&15] = c.cachedRead32(regs[rs1&15] + imm)
				regs[rd2&15] = regs[rs3&15] | regs[rs4&15]
				nx(c, regs)
			}
		case uXOR:
			return func(c *CPU, regs *[isa.NumRegs]uint32) {
				regs[rd&15] = c.cachedRead32(regs[rs1&15] + imm)
				regs[rd2&15] = regs[rs3&15] ^ regs[rs4&15]
				nx(c, regs)
			}
		case uADDI:
			return func(c *CPU, regs *[isa.NumRegs]uint32) {
				regs[rd&15] = c.cachedRead32(regs[rs1&15] + imm)
				regs[rd2&15] = regs[rs3&15] + imm2
				nx(c, regs)
			}
		case uANDI:
			return func(c *CPU, regs *[isa.NumRegs]uint32) {
				regs[rd&15] = c.cachedRead32(regs[rs1&15] + imm)
				regs[rd2&15] = regs[rs3&15] & imm2
				nx(c, regs)
			}
		case uORI:
			return func(c *CPU, regs *[isa.NumRegs]uint32) {
				regs[rd&15] = c.cachedRead32(regs[rs1&15] + imm)
				regs[rd2&15] = regs[rs3&15] | imm2
				nx(c, regs)
			}
		case uXORI:
			return func(c *CPU, regs *[isa.NumRegs]uint32) {
				regs[rd&15] = c.cachedRead32(regs[rs1&15] + imm)
				regs[rd2&15] = regs[rs3&15] ^ imm2
				nx(c, regs)
			}
		}

	case fkAluSt:
		// a: ALU, b: proven word store (value regs[rd2], base regs[rs3],
		// proven region in rs4). The watermark branch is a captured bool,
		// perfectly predicted per closure.
		pkt := Region(rs4) == RegionPacket
		switch a.code {
		case uADD:
			return func(c *CPU, regs *[isa.NumRegs]uint32) {
				regs[rd&15] = regs[rs1&15] + regs[rs2&15]
				addr := regs[rs3&15] + imm2
				if pkt && addr+4 > c.packetWriteHigh {
					c.packetWriteHigh = addr + 4
				}
				o := addr & (pageSize - 1)
				pg := c.cachedPage(addr)
				binary.LittleEndian.PutUint32(pg[o:o+4:o+4], regs[rd2&15])
				nx(c, regs)
			}
		case uSUB:
			return func(c *CPU, regs *[isa.NumRegs]uint32) {
				regs[rd&15] = regs[rs1&15] - regs[rs2&15]
				addr := regs[rs3&15] + imm2
				if pkt && addr+4 > c.packetWriteHigh {
					c.packetWriteHigh = addr + 4
				}
				o := addr & (pageSize - 1)
				pg := c.cachedPage(addr)
				binary.LittleEndian.PutUint32(pg[o:o+4:o+4], regs[rd2&15])
				nx(c, regs)
			}
		case uAND:
			return func(c *CPU, regs *[isa.NumRegs]uint32) {
				regs[rd&15] = regs[rs1&15] & regs[rs2&15]
				addr := regs[rs3&15] + imm2
				if pkt && addr+4 > c.packetWriteHigh {
					c.packetWriteHigh = addr + 4
				}
				o := addr & (pageSize - 1)
				pg := c.cachedPage(addr)
				binary.LittleEndian.PutUint32(pg[o:o+4:o+4], regs[rd2&15])
				nx(c, regs)
			}
		case uOR:
			return func(c *CPU, regs *[isa.NumRegs]uint32) {
				regs[rd&15] = regs[rs1&15] | regs[rs2&15]
				addr := regs[rs3&15] + imm2
				if pkt && addr+4 > c.packetWriteHigh {
					c.packetWriteHigh = addr + 4
				}
				o := addr & (pageSize - 1)
				pg := c.cachedPage(addr)
				binary.LittleEndian.PutUint32(pg[o:o+4:o+4], regs[rd2&15])
				nx(c, regs)
			}
		case uXOR:
			return func(c *CPU, regs *[isa.NumRegs]uint32) {
				regs[rd&15] = regs[rs1&15] ^ regs[rs2&15]
				addr := regs[rs3&15] + imm2
				if pkt && addr+4 > c.packetWriteHigh {
					c.packetWriteHigh = addr + 4
				}
				o := addr & (pageSize - 1)
				pg := c.cachedPage(addr)
				binary.LittleEndian.PutUint32(pg[o:o+4:o+4], regs[rd2&15])
				nx(c, regs)
			}
		case uADDI:
			return func(c *CPU, regs *[isa.NumRegs]uint32) {
				regs[rd&15] = regs[rs1&15] + imm
				addr := regs[rs3&15] + imm2
				if pkt && addr+4 > c.packetWriteHigh {
					c.packetWriteHigh = addr + 4
				}
				o := addr & (pageSize - 1)
				pg := c.cachedPage(addr)
				binary.LittleEndian.PutUint32(pg[o:o+4:o+4], regs[rd2&15])
				nx(c, regs)
			}
		case uANDI:
			return func(c *CPU, regs *[isa.NumRegs]uint32) {
				regs[rd&15] = regs[rs1&15] & imm
				addr := regs[rs3&15] + imm2
				if pkt && addr+4 > c.packetWriteHigh {
					c.packetWriteHigh = addr + 4
				}
				o := addr & (pageSize - 1)
				pg := c.cachedPage(addr)
				binary.LittleEndian.PutUint32(pg[o:o+4:o+4], regs[rd2&15])
				nx(c, regs)
			}
		case uORI:
			return func(c *CPU, regs *[isa.NumRegs]uint32) {
				regs[rd&15] = regs[rs1&15] | imm
				addr := regs[rs3&15] + imm2
				if pkt && addr+4 > c.packetWriteHigh {
					c.packetWriteHigh = addr + 4
				}
				o := addr & (pageSize - 1)
				pg := c.cachedPage(addr)
				binary.LittleEndian.PutUint32(pg[o:o+4:o+4], regs[rd2&15])
				nx(c, regs)
			}
		case uXORI:
			return func(c *CPU, regs *[isa.NumRegs]uint32) {
				regs[rd&15] = regs[rs1&15] ^ imm
				addr := regs[rs3&15] + imm2
				if pkt && addr+4 > c.packetWriteHigh {
					c.packetWriteHigh = addr + 4
				}
				o := addr & (pageSize - 1)
				pg := c.cachedPage(addr)
				binary.LittleEndian.PutUint32(pg[o:o+4:o+4], regs[rd2&15])
				nx(c, regs)
			}
		}

	case fkAluAlu:
		switch [2]uint8{a.code, b.code} {
		case [2]uint8{uANDI, uADD}:
			return func(c *CPU, regs *[isa.NumRegs]uint32) {
				regs[rd&15] = regs[rs1&15] & imm
				regs[rd2&15] = regs[rs3&15] + regs[rs4&15]
				nx(c, regs)
			}
		case [2]uint8{uADD, uXOR}:
			return func(c *CPU, regs *[isa.NumRegs]uint32) {
				regs[rd&15] = regs[rs1&15] + regs[rs2&15]
				regs[rd2&15] = regs[rs3&15] ^ regs[rs4&15]
				nx(c, regs)
			}
		case [2]uint8{uXOR, uADD}:
			return func(c *CPU, regs *[isa.NumRegs]uint32) {
				regs[rd&15] = regs[rs1&15] ^ regs[rs2&15]
				regs[rd2&15] = regs[rs3&15] + regs[rs4&15]
				nx(c, regs)
			}
		case [2]uint8{uAND, uADD}:
			return func(c *CPU, regs *[isa.NumRegs]uint32) {
				regs[rd&15] = regs[rs1&15] & regs[rs2&15]
				regs[rd2&15] = regs[rs3&15] + regs[rs4&15]
				nx(c, regs)
			}
		case [2]uint8{uADD, uADDI}:
			return func(c *CPU, regs *[isa.NumRegs]uint32) {
				regs[rd&15] = regs[rs1&15] + regs[rs2&15]
				regs[rd2&15] = regs[rs3&15] + imm2
				nx(c, regs)
			}
		case [2]uint8{uADDI, uADDI}:
			return func(c *CPU, regs *[isa.NumRegs]uint32) {
				regs[rd&15] = regs[rs1&15] + imm
				regs[rd2&15] = regs[rs3&15] + imm2
				nx(c, regs)
			}
		case [2]uint8{uSLLI, uOR}:
			sh := imm & 31
			return func(c *CPU, regs *[isa.NumRegs]uint32) {
				regs[rd&15] = regs[rs1&15] << sh
				regs[rd2&15] = regs[rs3&15] | regs[rs4&15]
				nx(c, regs)
			}
		case [2]uint8{uSRLI, uANDI}:
			sh := imm & 31
			return func(c *CPU, regs *[isa.NumRegs]uint32) {
				regs[rd&15] = regs[rs1&15] >> sh
				regs[rd2&15] = regs[rs3&15] & imm2
				nx(c, regs)
			}
		}

	case fkAluGuard:
		// a: uADDI, b: conditional branch — the counted-loop latch shape.
		if s.role == roleGuardInv {
			switch b.code {
			case uBEQ:
				return func(c *CPU, regs *[isa.NumRegs]uint32) {
					regs[rd&15] = regs[rs1&15] + imm
					if regs[rs3&15] == regs[rs4&15] {
						nx(c, regs)
						return
					}
					c.cframe.kind, c.cframe.pos, c.cframe.idx, c.cframe.pcv = kind, epos, tIdx, tPcv
				}
			case uBNE:
				return func(c *CPU, regs *[isa.NumRegs]uint32) {
					regs[rd&15] = regs[rs1&15] + imm
					if regs[rs3&15] != regs[rs4&15] {
						nx(c, regs)
						return
					}
					c.cframe.kind, c.cframe.pos, c.cframe.idx, c.cframe.pcv = kind, epos, tIdx, tPcv
				}
			case uBLT:
				return func(c *CPU, regs *[isa.NumRegs]uint32) {
					regs[rd&15] = regs[rs1&15] + imm
					if int32(regs[rs3&15]) < int32(regs[rs4&15]) {
						nx(c, regs)
						return
					}
					c.cframe.kind, c.cframe.pos, c.cframe.idx, c.cframe.pcv = kind, epos, tIdx, tPcv
				}
			case uBGE:
				return func(c *CPU, regs *[isa.NumRegs]uint32) {
					regs[rd&15] = regs[rs1&15] + imm
					if int32(regs[rs3&15]) >= int32(regs[rs4&15]) {
						nx(c, regs)
						return
					}
					c.cframe.kind, c.cframe.pos, c.cframe.idx, c.cframe.pcv = kind, epos, tIdx, tPcv
				}
			case uBLTU:
				return func(c *CPU, regs *[isa.NumRegs]uint32) {
					regs[rd&15] = regs[rs1&15] + imm
					if regs[rs3&15] < regs[rs4&15] {
						nx(c, regs)
						return
					}
					c.cframe.kind, c.cframe.pos, c.cframe.idx, c.cframe.pcv = kind, epos, tIdx, tPcv
				}
			case uBGEU:
				return func(c *CPU, regs *[isa.NumRegs]uint32) {
					regs[rd&15] = regs[rs1&15] + imm
					if regs[rs3&15] >= regs[rs4&15] {
						nx(c, regs)
						return
					}
					c.cframe.kind, c.cframe.pos, c.cframe.idx, c.cframe.pcv = kind, epos, tIdx, tPcv
				}
			}
		} else {
			switch b.code {
			case uBEQ:
				return func(c *CPU, regs *[isa.NumRegs]uint32) {
					regs[rd&15] = regs[rs1&15] + imm
					if regs[rs3&15] == regs[rs4&15] {
						c.cframe.kind, c.cframe.pos, c.cframe.idx, c.cframe.pcv = kind, epos, tIdx, tPcv
						return
					}
					nx(c, regs)
				}
			case uBNE:
				return func(c *CPU, regs *[isa.NumRegs]uint32) {
					regs[rd&15] = regs[rs1&15] + imm
					if regs[rs3&15] != regs[rs4&15] {
						c.cframe.kind, c.cframe.pos, c.cframe.idx, c.cframe.pcv = kind, epos, tIdx, tPcv
						return
					}
					nx(c, regs)
				}
			case uBLT:
				return func(c *CPU, regs *[isa.NumRegs]uint32) {
					regs[rd&15] = regs[rs1&15] + imm
					if int32(regs[rs3&15]) < int32(regs[rs4&15]) {
						c.cframe.kind, c.cframe.pos, c.cframe.idx, c.cframe.pcv = kind, epos, tIdx, tPcv
						return
					}
					nx(c, regs)
				}
			case uBGE:
				return func(c *CPU, regs *[isa.NumRegs]uint32) {
					regs[rd&15] = regs[rs1&15] + imm
					if int32(regs[rs3&15]) >= int32(regs[rs4&15]) {
						c.cframe.kind, c.cframe.pos, c.cframe.idx, c.cframe.pcv = kind, epos, tIdx, tPcv
						return
					}
					nx(c, regs)
				}
			case uBLTU:
				return func(c *CPU, regs *[isa.NumRegs]uint32) {
					regs[rd&15] = regs[rs1&15] + imm
					if regs[rs3&15] < regs[rs4&15] {
						c.cframe.kind, c.cframe.pos, c.cframe.idx, c.cframe.pcv = kind, epos, tIdx, tPcv
						return
					}
					nx(c, regs)
				}
			case uBGEU:
				return func(c *CPU, regs *[isa.NumRegs]uint32) {
					regs[rd&15] = regs[rs1&15] + imm
					if regs[rs3&15] >= regs[rs4&15] {
						c.cframe.kind, c.cframe.pos, c.cframe.idx, c.cframe.pcv = kind, epos, tIdx, tPcv
						return
					}
					nx(c, regs)
				}
			}
		}
	}

	// No specialized case: decompose into the two single-op closures.
	// The first component is non-faulting by fuseKind's construction, so
	// its slot's pc/pos are never observed.
	sec := *s
	sec.op, sec.fk = s.op2, fkNone
	second := makeStep(&sec, nx)
	fst := cslot{op: s.op, role: roleOp, pc: s.pc - isa.WordSize, pos: epos - 1}
	return makeStep(&fst, second)
}

// storeFaultKind is storeFault without the allocation: the fault kind
// for a store into a text or unmapped region.
func storeFaultKind(region Region) FaultKind {
	if region == RegionText {
		return FaultTextWrite
	}
	return FaultUnmapped
}

// RunCompiled executes the program with the compiled tier enabled: hot
// chains run as specialized closures, everything else runs on the
// reference interpreter one block at a time, and online promotion moves
// blocks from the second set into the first. The observable contract is
// RunProgram's, bit for bit. A traced run falls back to the threaded
// traced loop: the compiled tier cannot replay the interpreter's
// per-instruction event order, so it never runs under a Tracer.
func (c *CPU) RunCompiled(cp *CompiledProgram, maxSteps uint64) (steps uint64, reason StopReason, err error) {
	if c.Tracer != nil {
		return c.runTraced(cp.p, maxSteps)
	}
	return c.runCompiled(cp, maxSteps)
}

// runCompiled is the untraced mixed-tier dispatch loop.
//
//pblint:hotpath runCompiled
func (c *CPU) runCompiled(cp *CompiledProgram, maxSteps uint64) (steps uint64, reason StopReason, rerr error) {
	p := cp.p
	textBase := p.textBase
	n := uint32(len(p.ops))
	regs := &c.Regs
	// Instructions retired by compiled chains, owed to the lifetime
	// counter (the cold tier's interpreter charges c.steps itself), and
	// loop-latch exits, owed to the telemetry counter. Both accumulate
	// in locals and flush once per run.
	var csteps, loopExits uint64
	defer func() { //pblint:allow — once per run, not per block
		c.steps += csteps
		cp.stats.Exits[CexitLoop&7] += loopExits
	}()

	pcv := c.PC // pending control-transfer target, when idx < 0
	idx := -1   // entry instruction index, when >= 0 (already validated in-text)
	for {
		if idx < 0 {
			// Slow entry: arbitrary PC. The check order matches the
			// interpreter: return address, budget, fetch.
			if pcv == ReturnAddress {
				c.PC = pcv
				return steps, StopReturn, nil
			}
			if steps >= maxSteps {
				c.PC = pcv
				return steps, 0, &Fault{Kind: FaultStepLimit, PC: pcv}
			}
			off := pcv - textBase
			if off%isa.WordSize != 0 || off/isa.WordSize >= n {
				c.PC = pcv
				return steps, 0, &Fault{Kind: FaultBadFetch, PC: pcv}
			}
			idx = int(off / isa.WordSize)
		}

		// Hot tier: run the chain rooted here, if one is compiled and
		// the remaining budget covers its longest path (entering with
		// less would need a budget check between closures; the cold
		// tier below raises any step-limit fault at the exact
		// instruction instead).
		for {
			ch := cp.chains[idx]
			if ch == nil {
				if cp.online {
					b := p.blockOf[idx]
					if p.leader[b] == int32(idx) && !cp.tried[b] {
						cp.counts[b]++
						if cp.counts[b] >= cp.promote {
							cp.tried[b] = true
							if cp.compileAt(int32(idx)) {
								continue // enter the fresh chain this entry
							}
						}
					}
				}
				break
			}
			if rem := maxSteps - steps; uint64(ch.n) > rem {
				cp.stats.Exits[CexitBudget&7]++
				break
			}
			// Latch fast path: a taken loop latch re-enters the same
			// chain without touching the dispatch state above.
			f := &c.cframe
			for {
				ch.entry(c, regs)
				if f.kind != CexitLoop {
					break
				}
				steps += uint64(f.pos)
				csteps += uint64(f.pos)
				loopExits++
				if uint64(ch.n) > maxSteps-steps {
					cp.stats.Exits[CexitBudget&7]++
					break
				}
			}
			if f.kind == CexitLoop {
				break // ran out of budget mid-loop: cold tier from here
			}
			steps += uint64(f.pos)
			csteps += uint64(f.pos)
			cp.stats.Exits[f.kind&7]++
			switch f.kind {
			case CexitHalt:
				c.PC = f.pcv
				return steps, StopHalt, nil
			case CexitFault:
				c.PC = f.fpc
				return steps, 0, &Fault{Kind: f.fkind, PC: f.fpc, Addr: f.faddr}
			default: // CexitEnd, CexitBranch, CexitJump, CexitJalr
				if f.idx >= 0 {
					idx = int(f.idx)
					continue // maybe straight into the next chain
				}
				idx, pcv = -1, f.pcv
			}
			break
		}
		if idx < 0 {
			continue // dynamic target: slow re-validation above
		}

		// Cold tier: the reference interpreter runs the rest of this
		// basic block. Its state is fully materialized at every
		// instruction, so mixing tiers cannot be observed; want never
		// overruns the block because a branch is always a terminator.
		c.PC = textBase + uint32(idx)*isa.WordSize
		want := uint64(int(p.endAt[idx]) - idx)
		if rem := maxSteps - steps; want > rem {
			want = rem
		}
		sub, stop, err := c.Run(want)
		steps += sub
		if err != nil {
			if fe, ok := err.(*Fault); ok && fe.Kind == FaultStepLimit && steps < maxSteps {
				// Only the per-block allowance expired, not the real
				// budget: not a fault. Keep dispatching at the
				// interpreter's PC (the next unexecuted instruction).
				idx, pcv = -1, c.PC
				continue
			}
			return steps, 0, err
		}
		// err == nil: the interpreter stopped for real (halt or return).
		return steps, stop, nil
	}
}
