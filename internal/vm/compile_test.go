package vm

import (
	"errors"
	"testing"

	"repro/internal/analysis"
	"repro/internal/isa"
)

// compiledTestLayout is the standard memory map of the compiled-tier
// tests, matching the dispatch benchmark's.
func compiledTestLayout() Layout {
	return Layout{
		PacketBase: 0x20000000, PacketEnd: 0x20010000,
		DataBase: 0x10000000, DataEnd: 0x10100000,
		StackBase: 0x7FFF0000, StackEnd: 0x80000000,
	}
}

// runEngine executes text on a fresh CPU with either the interpreter or
// the compiled tier and returns every observable the side-exit contract
// must materialize: the CPU (registers, PC, watermark, memory), the
// retired-step count, the stop reason, and the fault.
func runCompiledEngine(t *testing.T, text []isa.Instruction, cp *CompiledProgram,
	maxSteps uint64, setup func(*CPU)) (*CPU, uint64, StopReason, *Fault) {
	t.Helper()
	const textBase = 0x00400000
	mem := NewMemory()
	cpu := New(text, textBase, mem)
	cpu.Layout = compiledTestLayout()
	payload := make([]byte, 256)
	for i := range payload {
		payload[i] = byte(i*3 + 1)
	}
	mem.WriteBytes(cpu.Layout.PacketBase, payload)
	cpu.Regs[1] = cpu.Layout.PacketBase
	cpu.Regs[3] = cpu.Layout.StackEnd - 0x8000
	if setup != nil {
		setup(cpu)
	}
	cpu.PC = textBase
	var (
		steps  uint64
		reason StopReason
		err    error
	)
	if cp != nil {
		steps, reason, err = cpu.RunCompiled(cp, maxSteps)
	} else {
		steps, reason, err = cpu.Run(maxSteps)
	}
	var fault *Fault
	if err != nil && !errors.As(err, &fault) {
		t.Fatalf("non-Fault error: %v", err)
	}
	return cpu, steps, reason, fault
}

// compileAll builds the compiled tier for text with every block leader
// pre-seeded hot, so the chains exist from the first packet and the test
// exercises compiled closures rather than the cold tier.
func compileAll(t *testing.T, text []isa.Instruction, facts *TranslationFacts) *CompiledProgram {
	t.Helper()
	const textBase = 0x00400000
	blocks := analysis.NewBlockMap(text, textBase)
	tprog := TranslateWithFacts(text, textBase, blocks, facts)
	var hot []int32
	for b := 0; b < blocks.NumBlocks(); b++ {
		hot = append(hot, int32(blocks.LeaderIndex(b)))
	}
	cp := Compile(tprog, facts, CompileConfig{Hot: hot})
	if cp == nil {
		t.Fatal("Compile returned nil with non-nil facts")
	}
	if cp.Stats().BlocksCompiled == 0 {
		t.Fatal("Compile built no chains")
	}
	return cp
}

// TestCompiledSideExits is the side-exit contract, table-driven: a
// compiled region that stops mid-chain — a bad load, a misaligned
// store, step-budget exhaustion (including inside the unrolled copies
// of a loop latch), a halt, a return — must leave the CPU bit-identical
// to the interpreter: registers, PC, retired steps, stop reason, fault
// kind/PC/address, packet-store watermark, and the whole memory image.
func TestCompiledSideExits(t *testing.T) {
	// loopBody(n) is a counted packet-mix loop: load a packet word
	// indexed off the counter, mix, store to the stack, decrement,
	// branch back. With facts on the LW/SW it compiles to a fused,
	// latch-unrolled chain; without facts the accesses stay checked.
	loopBody := func(n int32, lwImm int32) []isa.Instruction {
		return []isa.Instruction{
			ins(isa.ADDI, 4, isa.Zero, 0, n), // counter
			ins(isa.ADDI, 5, isa.Zero, 0, 0), // accumulator
			ins(isa.ADDI, 7, 1, 0, 0),        // cursor = packet base
			// loop:
			ins(isa.LW, 6, 7, 0, lwImm),
			ins(isa.ADD, 5, 5, 6, 0),
			ins(isa.XOR, 5, 5, 4, 0),
			ins(isa.SW, 5, 3, 0, -8),
			ins(isa.ANDI, 8, 4, 0, 0x3C),
			ins(isa.ADD, 7, 1, 8, 0),
			ins(isa.ADDI, 4, 4, 0, -1),
			ins(isa.BNE, 0, 4, isa.Zero, -8), // -> loop
			ins(isa.HALT, 0, 0, 0, 0),
		}
	}
	packetFacts := func(text []isa.Instruction) *TranslationFacts {
		tf := &TranslationFacts{Mem: make([]Region, len(text))}
		tf.Mem[3] = RegionPacket
		tf.Mem[6] = RegionStack
		return tf
	}

	cases := []struct {
		name     string
		text     []isa.Instruction
		facts    func(text []isa.Instruction) *TranslationFacts
		maxSteps uint64
		setup    func(*CPU)
		wantExit CompiledExitReason // an exit reason that must be observed
	}{
		{
			// The checked LW reads an unmapped address on the very first
			// iteration: the chain faults mid-body, after the three
			// header instructions retired.
			name: "bad load mid-chain",
			text: loopBody(16, 0),
			facts: func(text []isa.Instruction) *TranslationFacts {
				return &TranslationFacts{} // accesses stay checked
			},
			maxSteps: 100_000,
			setup:    func(c *CPU) { c.Regs[1] = 0x00000100 }, // unmapped cursor
			wantExit: CexitFault,
		},
		{
			// The checked SW hits a misaligned stack address.
			name: "misaligned store mid-chain",
			text: loopBody(16, 0),
			facts: func(text []isa.Instruction) *TranslationFacts {
				return &TranslationFacts{}
			},
			maxSteps: 100_000,
			setup:    func(c *CPU) { c.Regs[3] = compiledTestLayout().StackEnd - 0x8000 + 2 },
			wantExit: CexitFault,
		},
		{
			// The budget runs out mid-loop: 50 steps into a 256-iteration
			// loop, nowhere near a chain boundary.
			name:     "budget exhaustion mid-chain",
			text:     loopBody(256, 0),
			facts:    packetFacts,
			maxSteps: 50,
			wantExit: CexitBudget,
		},
		{
			// The budget lands inside the unrolled latch copies (not a
			// multiple of 4 iterations' worth of steps), pinning the
			// per-copy side-exit position rebasing.
			name:     "budget exhaustion inside unrolled latch",
			text:     loopBody(256, 0),
			facts:    packetFacts,
			maxSteps: 3 + 8*4 + 5, // header + 4 iterations + mid-body
			wantExit: CexitBudget,
		},
		{
			// The load goes bad on iteration 200 of 256 (the cursor
			// walks off the packet page), i.e. deep inside the unrolled
			// steady state — the materialized fault must still name the
			// exact PC, address, and retire count.
			name: "fault deep in unrolled loop",
			text: loopBody(256, 0x0FFC),
			facts: func(text []isa.Instruction) *TranslationFacts {
				return &TranslationFacts{}
			},
			maxSteps: 100_000,
			setup: func(c *CPU) {
				// 0x0FFC + base + (counter&0x3C) crosses PacketEnd's last
				// mapped word when counter&0x3C == 4 — but stays inside
				// for 0: the fault fires when the masked index first
				// exceeds the page.
				c.Layout.PacketEnd = c.Layout.PacketBase + 0x1000
			},
			wantExit: CexitFault,
		},
		{
			name:     "halt at chain end",
			text:     loopBody(4, 0),
			facts:    packetFacts,
			maxSteps: 100_000,
			wantExit: CexitHalt,
		},
		{
			// A leaf return: jalr to the ABI return address stops the
			// run with StopReturn.
			name: "return to host",
			text: []isa.Instruction{
				ins(isa.LW, 6, 1, 0, 0),
				ins(isa.ADD, 10, 6, 6, 0),
				ins(isa.JALR, isa.Zero, 2, 0, 0),
			},
			facts: func(text []isa.Instruction) *TranslationFacts {
				tf := &TranslationFacts{Mem: make([]Region, len(text))}
				tf.Mem[0] = RegionPacket
				return tf
			},
			maxSteps: 100_000,
			setup:    func(c *CPU) { c.Regs[2] = ReturnAddress },
			wantExit: CexitJalr,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cp := compileAll(t, tc.text, tc.facts(tc.text))
			ic, isteps, ireason, ifault := runCompiledEngine(t, tc.text, nil, tc.maxSteps, tc.setup)
			cc, csteps, creason, cfault := runCompiledEngine(t, tc.text, cp, tc.maxSteps, tc.setup)

			if ic.Regs != cc.Regs {
				t.Errorf("registers diverge:\ninterp   %v\ncompiled %v", ic.Regs, cc.Regs)
			}
			if ic.PC != cc.PC || isteps != csteps || ireason != creason {
				t.Errorf("pc/steps/reason diverge: interp (%#x,%d,%v) compiled (%#x,%d,%v)",
					ic.PC, isteps, ireason, cc.PC, csteps, creason)
			}
			if (ifault == nil) != (cfault == nil) {
				t.Fatalf("fault presence diverges: interp %v compiled %v", ifault, cfault)
			}
			if ifault != nil && *ifault != *cfault {
				t.Errorf("faults diverge: interp %+v compiled %+v", ifault, cfault)
			}
			if ic.PacketWriteHigh() != cc.PacketWriteHigh() {
				t.Errorf("packet watermark diverges: %#x vs %#x", ic.PacketWriteHigh(), cc.PacketWriteHigh())
			}
			if !ic.Mem.Equal(cc.Mem) {
				t.Error("memory images diverge")
			}
			if n := cp.Stats().Exits[tc.wantExit]; n == 0 {
				t.Errorf("expected at least one %v side exit, stats %+v", tc.wantExit, cp.Stats())
			}
		})
	}
}

// TestCompiledMatchesInterpreterSweep sweeps the step budget over every
// possible mid-chain stop point of a fused, unrolled loop: for each
// budget from 1 to full completion, the compiled tier's materialized
// state must equal the interpreter's. This catches off-by-one retire
// counts at any side-exit position, including every unrolled copy.
func TestCompiledMatchesInterpreterSweep(t *testing.T) {
	text := []isa.Instruction{
		ins(isa.ADDI, 4, isa.Zero, 0, 12),
		ins(isa.ADDI, 5, isa.Zero, 0, 0),
		ins(isa.ADDI, 7, 1, 0, 0),
		ins(isa.LW, 6, 7, 0, 0),
		ins(isa.ADD, 5, 5, 6, 0),
		ins(isa.XOR, 5, 5, 4, 0),
		ins(isa.SW, 5, 3, 0, -8),
		ins(isa.ANDI, 8, 4, 0, 0x3C),
		ins(isa.ADD, 7, 1, 8, 0),
		ins(isa.ADDI, 4, 4, 0, -1),
		ins(isa.BNE, 0, 4, isa.Zero, -8),
		ins(isa.HALT, 0, 0, 0, 0),
	}
	tf := &TranslationFacts{Mem: make([]Region, len(text))}
	tf.Mem[3] = RegionPacket
	tf.Mem[6] = RegionStack
	cp := compileAll(t, text, tf)

	const fullRun = 3 + 12*8 + 1 // header + 12 iterations + halt
	for budget := uint64(1); budget <= fullRun+1; budget++ {
		ic, isteps, ireason, ifault := runCompiledEngine(t, text, nil, budget, nil)
		cc, csteps, creason, cfault := runCompiledEngine(t, text, cp, budget, nil)
		if ic.Regs != cc.Regs || ic.PC != cc.PC || isteps != csteps || ireason != creason {
			t.Fatalf("budget %d: state diverges: interp (pc=%#x steps=%d reason=%v)\ncompiled (pc=%#x steps=%d reason=%v)\ninterp regs   %v\ncompiled regs %v",
				budget, ic.PC, isteps, ireason, cc.PC, csteps, creason, ic.Regs, cc.Regs)
		}
		if (ifault == nil) != (cfault == nil) || (ifault != nil && *ifault != *cfault) {
			t.Fatalf("budget %d: faults diverge: interp %+v compiled %+v", budget, ifault, cfault)
		}
		if !ic.Mem.Equal(cc.Mem) {
			t.Fatalf("budget %d: memory images diverge", budget)
		}
	}
}

// TestCompiledOnlinePromotion checks the online tier-promotion path: with
// no offline profile, a block must first run cold PromoteAfter times and
// only then be compiled; after promotion the chain executes and the
// stats say so.
func TestCompiledOnlinePromotion(t *testing.T) {
	text := []isa.Instruction{
		ins(isa.LW, 6, 1, 0, 0),
		ins(isa.ADD, 10, 6, 6, 0),
		ins(isa.HALT, 0, 0, 0, 0),
	}
	const textBase = 0x00400000
	blocks := analysis.NewBlockMap(text, textBase)
	tf := &TranslationFacts{Mem: []Region{RegionPacket}}
	tprog := TranslateWithFacts(text, textBase, blocks, tf)
	cp := Compile(tprog, tf, CompileConfig{PromoteAfter: 3})
	if cp == nil {
		t.Fatal("Compile returned nil")
	}

	mem := NewMemory()
	cpu := New(text, textBase, mem)
	cpu.Layout = compiledTestLayout()
	mem.WriteBytes(cpu.Layout.PacketBase, []byte{1, 2, 3, 4})
	for run := 1; run <= 5; run++ {
		cpu.Regs[1] = cpu.Layout.PacketBase
		cpu.PC = textBase
		if _, _, err := cpu.RunCompiled(cp, 1000); err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		compiled := cp.Stats().BlocksCompiled
		if run < 3 && compiled != 0 {
			t.Fatalf("run %d: block promoted after %d executions, want %d", run, run, 3)
		}
		if run >= 3 && compiled == 0 {
			t.Fatalf("run %d: block still cold, want promotion after 3 executions", run)
		}
	}
	if cp.Stats().Exits[CexitHalt] == 0 {
		t.Fatalf("promoted chain never executed: stats %+v", cp.Stats())
	}
}

// TestCompileRequiresFacts is the hostile half of the compiled tier's
// NoVerify contract, the compile-time analogue of
// TestNoProofNoUncheckedOps: without verifier facts there is no compiled
// tier at all — Compile refuses to build chains, so an unverified
// program can never execute compiled code.
func TestCompileRequiresFacts(t *testing.T) {
	text := dispatchProgram()
	const textBase = 0x00400000
	blocks := analysis.NewBlockMap(text, textBase)
	tprog := Translate(text, textBase, blocks)

	if cp := Compile(tprog, nil, CompileConfig{Hot: []int32{0, 3}}); cp != nil {
		t.Fatal("Compile built a program without facts")
	}
	if cp := Compile(nil, &TranslationFacts{}, CompileConfig{}); cp != nil {
		t.Fatal("Compile built a program without a translation")
	}
}

// TestCompiledChainEligibility checks that the verifier's
// chain-eligibility facts gate compilation: a block marked ineligible
// must never root a chain, even when seeded hot, and execution falls
// back to the cold tier with identical results.
func TestCompiledChainEligibility(t *testing.T) {
	text := []isa.Instruction{
		ins(isa.LW, 6, 1, 0, 0),
		ins(isa.ADD, 10, 6, 6, 0),
		ins(isa.HALT, 0, 0, 0, 0),
	}
	const textBase = 0x00400000
	blocks := analysis.NewBlockMap(text, textBase)
	tf := &TranslationFacts{
		Mem:   []Region{RegionPacket},
		Chain: make([]bool, blocks.NumBlocks()), // all ineligible
	}
	tprog := TranslateWithFacts(text, textBase, blocks, tf)
	cp := Compile(tprog, tf, CompileConfig{Hot: []int32{0}, PromoteAfter: 1})
	if cp == nil {
		t.Fatal("Compile returned nil")
	}
	if got := cp.Stats().BlocksCompiled; got != 0 {
		t.Fatalf("compiled %d ineligible blocks, want 0", got)
	}

	mem := NewMemory()
	cpu := New(text, textBase, mem)
	cpu.Layout = compiledTestLayout()
	mem.WriteBytes(cpu.Layout.PacketBase, []byte{1, 2, 3, 4})
	for run := 0; run < 4; run++ { // past any promotion threshold
		cpu.Regs[1] = cpu.Layout.PacketBase
		cpu.PC = textBase
		if _, _, err := cpu.RunCompiled(cp, 1000); err != nil {
			t.Fatal(err)
		}
	}
	if got := cp.Stats().BlocksCompiled; got != 0 {
		t.Fatalf("online promotion compiled %d ineligible blocks, want 0", got)
	}
	if cpu.Regs[10] != 2*0x04030201 {
		t.Fatalf("cold-tier fallback produced wrong result: r10 = %#x", cpu.Regs[10])
	}
}
