package vm

import (
	"fmt"
	"testing"

	"repro/internal/analysis"
	"repro/internal/isa"
)

// dispatchProgram is a synthetic packet-processing kernel: a tight loop
// that loads packet words, mixes them into an accumulator, and stores
// the running hash to the stack — enough ALU, memory, and branch work to
// exercise every dispatch path without app/framework overhead.
func dispatchProgram() []isa.Instruction {
	return []isa.Instruction{
		{Op: isa.ADDI, Rd: 4, Rs1: isa.Zero, Imm: 256}, // counter
		{Op: isa.ADDI, Rd: 5, Rs1: isa.Zero, Imm: 0},   // accumulator
		{Op: isa.ADDI, Rd: 7, Rs1: 1, Imm: 0},          // cursor = packet base
		// loop:
		{Op: isa.LW, Rd: 6, Rs1: 7, Imm: 0},
		{Op: isa.ADD, Rd: 5, Rs1: 5, Rs2: 6},
		{Op: isa.XOR, Rd: 5, Rs1: 5, Rs2: 4},
		{Op: isa.SW, Rd: 5, Rs1: 3, Imm: -8},
		{Op: isa.ANDI, Rd: 8, Rs1: 4, Imm: 0x3C},
		{Op: isa.ADD, Rd: 7, Rs1: 1, Rs2: 8},
		{Op: isa.ADDI, Rd: 4, Rs1: 4, Imm: -1},
		{Op: isa.BNE, Rd: 0, Rs1: 4, Rs2: isa.Zero, Imm: -8}, // -> loop
		{Op: isa.HALT},
	}
}

// countingTracer is the cheapest possible observer — two counters — so
// the traced benchmarks measure dispatch + hook overhead, not tracer
// work.
type countingTracer struct {
	instrs, mems uint64
}

func (t *countingTracer) Instr(pc uint32, in isa.Instruction) { t.instrs++ }
func (t *countingTracer) Mem(pc, addr uint32, size uint8, write bool, region Region) {
	t.mems++
}

// BenchmarkVMDispatch measures raw simulator dispatch across the four
// engine/tracing combinations on the synthetic kernel. The instrs/sec
// metric is the simulator's headline speed; the threaded/traced=false
// row is the per-packet hot path the block-threaded engine exists for.
func BenchmarkVMDispatch(b *testing.B) {
	text := dispatchProgram()
	const textBase = 0x00400000
	blocks := analysis.NewBlockMap(text, textBase)
	tprog := Translate(text, textBase, blocks)

	// kernelFacts is what the verifier's facts pipeline would prove about
	// dispatchProgram (built by hand — the vm package cannot import the
	// verifier): the LW cursor stays inside the packet region (base +
	// (counter & 0x3C), word-aligned) and the SW target is sp-8 on the
	// stack. The threaded-fused row applies superinstruction fusion alone
	// (nil facts), and threaded-proof adds the bounds-check elision, so
	// the three untraced threaded rows separate dispatch, fusion, and
	// checking costs.
	kernelFacts := &TranslationFacts{Mem: make([]Region, len(text))}
	kernelFacts.Mem[3] = RegionPacket
	kernelFacts.Mem[6] = RegionStack
	fusedProg := TranslateWithFacts(text, textBase, blocks, nil)
	proofProg := TranslateWithFacts(text, textBase, blocks, kernelFacts)
	// The compiled row re-compiles per sub-benchmark run (the
	// CompiledProgram is per-CPU state), seeded hot so the chains exist
	// from the first iteration like the other engines' programs do.
	compiledHot := []int32{0, 3}

	for _, engine := range []string{"threaded", "threaded-fused", "threaded-proof", "compiled", "interp"} {
		for _, traced := range []bool{false, true} {
			if traced && (engine == "threaded-fused" || engine == "threaded-proof" || engine == "compiled") {
				continue // tracing always runs the unfused checked body
			}
			b.Run(fmt.Sprintf("%s/traced=%v", engine, traced), func(b *testing.B) {
				mem := NewMemory()
				cpu := New(text, textBase, mem)
				cpu.Layout.PacketBase = 0x20000000
				cpu.Layout.PacketEnd = 0x20010000
				cpu.Layout.DataBase = 0x10000000
				cpu.Layout.DataEnd = 0x10100000
				cpu.Layout.StackBase = 0x7FFF0000
				cpu.Layout.StackEnd = 0x80000000
				if traced {
					cpu.Tracer = &countingTracer{}
				}
				// Place a payload at the packet base, like the framework
				// does before every ProcessPacket: the kernel's loads hit
				// allocated pages, not the never-written nil-page path.
				payload := make([]byte, 64)
				for i := range payload {
					payload[i] = byte(i*7 + 3)
				}
				mem.WriteBytes(0x20000000, payload)
				cprog := Compile(proofProg, kernelFacts, CompileConfig{Hot: compiledHot})
				var steps uint64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					cpu.Regs[1] = 0x20000000
					cpu.Regs[3] = 0x7FFF8000
					cpu.PC = textBase
					before := cpu.Steps()
					var err error
					switch engine {
					case "threaded":
						_, _, err = cpu.RunProgram(tprog, 1<<30)
					case "threaded-fused":
						_, _, err = cpu.RunProgram(fusedProg, 1<<30)
					case "threaded-proof":
						_, _, err = cpu.RunProgram(proofProg, 1<<30)
					case "compiled":
						_, _, err = cpu.RunCompiled(cprog, 1<<30)
					default:
						_, _, err = cpu.Run(1 << 30)
					}
					if err != nil {
						b.Fatal(err)
					}
					steps += cpu.Steps() - before
				}
				b.StopTimer()
				if sec := b.Elapsed().Seconds(); sec > 0 {
					b.ReportMetric(float64(steps)/sec, "instrs/sec")
				}
				b.ReportMetric(float64(steps)/float64(b.N), "instrs/op")
			})
		}
	}
}
