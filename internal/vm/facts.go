package vm

// TranslationFacts carries verifier-proven properties of a program into
// the block-threaded translator. The facts are produced by the static
// verifier (internal/staticcheck) from an abstract interpretation of the
// program under the framework's entry contract; the translator consumes
// them to elide runtime fault checks and fold branches it could never
// prove safe on its own.
//
// Soundness contract: every claim in a TranslationFacts must hold on
// EVERY execution that enters the program at one of the entry points and
// with the ABI register state declared to the verifier. The translator
// trusts the facts blindly — an unchecked micro-op performs no
// alignment or region validation at all — so facts must only ever come
// from a sound analysis. A nil *TranslationFacts (or any per-entry zero
// value) always means "no proof", which degrades to the fully-checked
// translation; it can never make a program less safe, only slower.
type TranslationFacts struct {
	// Mem[i] is the proven memory region of instruction i's load/store
	// operand: on every run the access is entirely inside this mapped
	// region and naturally aligned, so the simulator's alignment and
	// classification checks cannot fire. RegionNone means no proof.
	Mem []Region
	// Branch[i] records a conditional branch whose direction is the
	// same on every run.
	Branch []BranchFact
	// Redundant[i] marks an AND/ANDI at i that provably leaves its
	// source value unchanged (every possibly-set bit of the source is
	// kept by the mask), so it can be translated as a register move.
	Redundant []bool
	// Dead[b] marks basic block b (in the translator's own block
	// numbering) as unreachable from the declared entry points. Dead
	// blocks keep their fully-checked translation and are skipped by
	// the optimizer.
	Dead []bool
	// Chain[b] marks basic block b as chain-eligible: the verifier's
	// analysis followed every instruction of the block, so the compiled
	// tier (compile.go) may root or extend a closure chain through it.
	// A nil slice means "no restriction" — the facts as a whole only
	// exist for verified programs, and ineligibility is the exception
	// (undecodable tails, blocks the analysis never completed).
	Chain []bool
}

// BranchFact is the statically proven direction of a conditional branch.
type BranchFact uint8

// Branch direction facts.
const (
	BranchUnknown BranchFact = iota // direction depends on the input
	BranchAlways                    // taken on every run
	BranchNever                     // never taken on any run
)

// memAt returns the proven region for instruction i, RegionNone when the
// facts are absent or silent.
func (tf *TranslationFacts) memAt(i int) Region {
	if tf == nil || i >= len(tf.Mem) {
		return RegionNone
	}
	return tf.Mem[i]
}

func (tf *TranslationFacts) branchAt(i int) BranchFact {
	if tf == nil || i >= len(tf.Branch) {
		return BranchUnknown
	}
	return tf.Branch[i]
}

func (tf *TranslationFacts) redundantAt(i int) bool {
	return tf != nil && i < len(tf.Redundant) && tf.Redundant[i]
}

func (tf *TranslationFacts) deadAt(b int) bool {
	return tf != nil && b < len(tf.Dead) && tf.Dead[b]
}

// chainOKAt reports whether block b is chain-eligible for the compiled
// tier. Absent facts default to eligible: Compile already refuses to
// run without a *TranslationFacts at all, and a verified program's
// blocks are eligible unless the verifier says otherwise.
func (tf *TranslationFacts) chainOKAt(b int) bool {
	if tf == nil || tf.Chain == nil {
		return true
	}
	return b < len(tf.Chain) && tf.Chain[b]
}
