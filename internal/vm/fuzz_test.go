package vm

import (
	"math/rand"
	"testing"

	"repro/internal/isa"
)

// goEval is an independent Go-side evaluator for ALU instructions, used
// as the oracle for differential fuzzing of the simulator's datapath.
func goEval(in isa.Instruction, regs *[isa.NumRegs]uint32) {
	rs1, rs2 := regs[in.Rs1], regs[in.Rs2]
	imm := uint32(in.Imm)
	var v uint32
	switch in.Op {
	case isa.ADD:
		v = rs1 + rs2
	case isa.SUB:
		v = rs1 - rs2
	case isa.AND:
		v = rs1 & rs2
	case isa.OR:
		v = rs1 | rs2
	case isa.XOR:
		v = rs1 ^ rs2
	case isa.SLL:
		v = rs1 << (rs2 & 31)
	case isa.SRL:
		v = rs1 >> (rs2 & 31)
	case isa.SRA:
		v = uint32(int32(rs1) >> (rs2 & 31))
	case isa.SLT:
		if int32(rs1) < int32(rs2) {
			v = 1
		}
	case isa.SLTU:
		if rs1 < rs2 {
			v = 1
		}
	case isa.MUL:
		v = rs1 * rs2
	case isa.ADDI:
		v = rs1 + imm
	case isa.ANDI:
		v = rs1 & imm
	case isa.ORI:
		v = rs1 | imm
	case isa.XORI:
		v = rs1 ^ imm
	case isa.SLLI:
		v = rs1 << (imm & 31)
	case isa.SRLI:
		v = rs1 >> (imm & 31)
	case isa.SRAI:
		v = uint32(int32(rs1) >> (imm & 31))
	case isa.SLTI:
		if int32(rs1) < in.Imm {
			v = 1
		}
	case isa.SLTIU:
		if rs1 < imm {
			v = 1
		}
	case isa.LUI:
		v = imm << 12
	default:
		panic("goEval: not an ALU op: " + in.Op.String())
	}
	if in.Rd != isa.Zero {
		regs[in.Rd] = v
	}
}

// aluOps are the opcodes the fuzzer draws from.
var aluOps = []isa.Opcode{
	isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR, isa.SLL, isa.SRL, isa.SRA,
	isa.SLT, isa.SLTU, isa.MUL,
	isa.ADDI, isa.ANDI, isa.ORI, isa.XORI, isa.SLLI, isa.SRLI, isa.SRAI,
	isa.SLTI, isa.SLTIU, isa.LUI,
}

func randomALU(rng *rand.Rand) isa.Instruction {
	op := aluOps[rng.Intn(len(aluOps))]
	// Avoid sp/ra so the harness registers stay intact for bookkeeping
	// (the architecture itself doesn't care).
	reg := func() isa.Reg { return isa.Reg(rng.Intn(12)) }
	in := isa.Instruction{Op: op, Rd: reg()}
	switch op.Format() {
	case isa.FormatR:
		in.Rs1, in.Rs2 = reg(), reg()
	case isa.FormatI:
		in.Rs1 = reg()
		switch op {
		case isa.SLLI, isa.SRLI, isa.SRAI:
			in.Imm = int32(rng.Intn(32))
		case isa.ANDI, isa.ORI, isa.XORI:
			in.Imm = int32(rng.Intn(isa.MaxUimm12 + 1))
		default:
			in.Imm = int32(rng.Intn(isa.MaxImm12-isa.MinImm12+1)) + isa.MinImm12
		}
	case isa.FormatU:
		in.Imm = int32(rng.Intn(isa.MaxUimm20 + 1))
	}
	return in
}

// TestDifferentialALUFuzz runs random straight-line ALU programs on the
// simulator and on the independent Go evaluator and compares every
// register afterwards.
func TestDifferentialALUFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(150)
		text := make([]isa.Instruction, 0, n+1)
		for i := 0; i < n; i++ {
			text = append(text, randomALU(rng))
		}
		text = append(text, isa.Instruction{Op: isa.HALT})

		// Random initial register file (zero register stays zero).
		var init [isa.NumRegs]uint32
		for r := 1; r < isa.NumRegs; r++ {
			init[r] = rng.Uint32()
		}

		cpu := New(text, 0x10000, NewMemory())
		cpu.Regs = init
		cpu.Regs[isa.Zero] = 0
		cpu.PC = 0x10000
		steps, reason, err := cpu.Run(uint64(n) + 10)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if reason != StopHalt || steps != uint64(n)+1 {
			t.Fatalf("trial %d: stopped %v after %d steps, want halt after %d",
				trial, reason, steps, n+1)
		}

		want := init
		want[isa.Zero] = 0
		for _, in := range text[:n] {
			goEval(in, &want)
		}
		for r := 0; r < isa.NumRegs; r++ {
			if cpu.Regs[r] != want[r] {
				t.Fatalf("trial %d: %s = %#x, oracle %#x\nprogram length %d",
					trial, isa.Reg(r), cpu.Regs[r], want[r], n)
			}
		}
	}
}

// TestDifferentialMemoryFuzz extends the fuzz to loads and stores over a
// scratch data region, with a Go-side byte-array oracle.
func TestDifferentialMemoryFuzz(t *testing.T) {
	const dataBase, dataSize = 0x10000000, 256
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 100; trial++ {
		var text []isa.Instruction
		n := 1 + rng.Intn(60)
		for i := 0; i < n; i++ {
			if rng.Intn(3) == 0 {
				// Memory op on a safe in-range offset with correct
				// alignment; base register r1 holds dataBase.
				ops := []isa.Opcode{isa.LB, isa.LBU, isa.LH, isa.LHU, isa.LW, isa.SB, isa.SH, isa.SW}
				op := ops[rng.Intn(len(ops))]
				align := op.MemSize()
				off := rng.Intn(dataSize-4) &^ (align - 1)
				text = append(text, isa.Instruction{
					Op: op, Rd: isa.Reg(2 + rng.Intn(8)), Rs1: isa.Reg(1), Imm: int32(off),
				})
			} else {
				in := randomALU(rng)
				// Keep r1 as the stable base pointer.
				if in.Rd == isa.Reg(1) {
					in.Rd = isa.Reg(2)
				}
				text = append(text, in)
			}
		}
		text = append(text, isa.Instruction{Op: isa.HALT})

		mem := NewMemory()
		cpu := New(text, 0x10000, mem)
		cpu.Layout.DataBase = dataBase
		cpu.Layout.DataEnd = dataBase + dataSize
		var init [isa.NumRegs]uint32
		for r := 2; r < 12; r++ {
			init[r] = rng.Uint32()
		}
		init[1] = dataBase
		cpu.Regs = init
		cpu.PC = 0x10000
		if _, _, err := cpu.Run(uint64(len(text)) + 10); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}

		// Oracle: evaluate with a byte-slice memory.
		want := init
		oracle := make([]byte, dataSize)
		rd8 := func(a uint32) uint32 { return uint32(oracle[a-dataBase]) }
		rd16 := func(a uint32) uint32 { return rd8(a) | rd8(a+1)<<8 }
		rd32 := func(a uint32) uint32 { return rd16(a) | rd16(a+2)<<16 }
		for _, in := range text[:len(text)-1] {
			if in.Op.IsLoad() || in.Op.IsStore() {
				addr := want[in.Rs1] + uint32(in.Imm)
				switch in.Op {
				case isa.LB:
					want[in.Rd] = uint32(int32(int8(rd8(addr))))
				case isa.LBU:
					want[in.Rd] = rd8(addr)
				case isa.LH:
					want[in.Rd] = uint32(int32(int16(rd16(addr))))
				case isa.LHU:
					want[in.Rd] = rd16(addr)
				case isa.LW:
					want[in.Rd] = rd32(addr)
				case isa.SB:
					oracle[addr-dataBase] = byte(want[in.Rd])
				case isa.SH:
					oracle[addr-dataBase] = byte(want[in.Rd])
					oracle[addr-dataBase+1] = byte(want[in.Rd] >> 8)
				case isa.SW:
					for k := 0; k < 4; k++ {
						oracle[addr-dataBase+uint32(k)] = byte(want[in.Rd] >> (8 * k))
					}
				}
				if in.Op.IsLoad() && in.Rd == isa.Zero {
					want[isa.Zero] = 0
				}
				continue
			}
			goEval(in, &want)
		}
		for r := 0; r < isa.NumRegs; r++ {
			if cpu.Regs[r] != want[r] {
				t.Fatalf("trial %d: %s = %#x, oracle %#x", trial, isa.Reg(r), cpu.Regs[r], want[r])
			}
		}
		for i := 0; i < dataSize; i++ {
			if got := mem.Read8(dataBase + uint32(i)); got != oracle[i] {
				t.Fatalf("trial %d: memory[%d] = %#x, oracle %#x", trial, i, got, oracle[i])
			}
		}
	}
}
