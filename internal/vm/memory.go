package vm

// pageBits selects a 4 KiB page size for the sparse memory.
const pageBits = 12

const pageSize = 1 << pageBits

type page [pageSize]byte

// Memory is the sparse, little-endian, byte-addressed memory of a
// simulated core. Pages are allocated on first touch, so multi-megabyte
// data structures (routing tables, flow tables) cost only the pages they
// actually use.
//
// Memory performs no bounds or region checking of its own: the CPU applies
// the Layout before every application access, and host (framework) code is
// trusted. All accessors tolerate any address.
type Memory struct {
	pages map[uint32]*page
}

// NewMemory creates an empty memory.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint32]*page)}
}

func (m *Memory) pageFor(addr uint32) *page {
	idx := addr >> pageBits
	p := m.pages[idx]
	if p == nil {
		p = new(page)
		m.pages[idx] = p
	}
	return p
}

// peek returns the byte at addr without allocating a page.
func (m *Memory) peek(addr uint32) byte {
	if p := m.pages[addr>>pageBits]; p != nil {
		return p[addr&(pageSize-1)]
	}
	return 0
}

// Read8 returns the byte at addr; untouched memory reads as zero.
func (m *Memory) Read8(addr uint32) uint8 { return m.peek(addr) }

// Read16 returns the little-endian 16-bit value at addr.
func (m *Memory) Read16(addr uint32) uint16 {
	return uint16(m.peek(addr)) | uint16(m.peek(addr+1))<<8
}

// Read32 returns the little-endian 32-bit value at addr.
func (m *Memory) Read32(addr uint32) uint32 {
	// Fast path: the word lies within one page (always true for aligned
	// accesses, which is all the CPU issues).
	if addr&(pageSize-1) <= pageSize-4 {
		if p := m.pages[addr>>pageBits]; p != nil {
			o := addr & (pageSize - 1)
			return uint32(p[o]) | uint32(p[o+1])<<8 | uint32(p[o+2])<<16 | uint32(p[o+3])<<24
		}
		return 0
	}
	return uint32(m.Read16(addr)) | uint32(m.Read16(addr+2))<<16
}

// Write8 stores one byte at addr.
func (m *Memory) Write8(addr uint32, v uint8) {
	m.pageFor(addr)[addr&(pageSize-1)] = v
}

// Write16 stores a little-endian 16-bit value at addr.
func (m *Memory) Write16(addr uint32, v uint16) {
	m.Write8(addr, uint8(v))
	m.Write8(addr+1, uint8(v>>8))
}

// Write32 stores a little-endian 32-bit value at addr.
func (m *Memory) Write32(addr uint32, v uint32) {
	if addr&(pageSize-1) <= pageSize-4 {
		p := m.pageFor(addr)
		o := addr & (pageSize - 1)
		p[o] = uint8(v)
		p[o+1] = uint8(v >> 8)
		p[o+2] = uint8(v >> 16)
		p[o+3] = uint8(v >> 24)
		return
	}
	m.Write16(addr, uint16(v))
	m.Write16(addr+2, uint16(v>>16))
}

// WriteBytes copies b into memory starting at addr. It is intended for
// host (framework) use: loading segments, placing packets.
func (m *Memory) WriteBytes(addr uint32, b []byte) {
	for len(b) > 0 {
		p := m.pageFor(addr)
		o := addr & (pageSize - 1)
		n := copy(p[o:], b)
		b = b[n:]
		addr += uint32(n)
	}
}

// ReadBytes copies n bytes starting at addr into a fresh slice. It is
// intended for host (framework) use: retrieving modified packets. Like
// WriteBytes it copies page-sized runs; unallocated pages read as zero.
func (m *Memory) ReadBytes(addr uint32, n int) []byte {
	out := make([]byte, n)
	for i := 0; i < n; {
		a := addr + uint32(i)
		o := a & (pageSize - 1)
		run := pageSize - int(o)
		if run > n-i {
			run = n - i
		}
		if p := m.pages[a>>pageBits]; p != nil {
			copy(out[i:i+run], p[o:int(o)+run])
		}
		i += run
	}
	return out
}

// Zero clears n bytes starting at addr without allocating pages for
// regions that were never written.
func (m *Memory) Zero(addr uint32, n int) {
	for i := 0; i < n; {
		idx := (addr + uint32(i)) >> pageBits
		p := m.pages[idx]
		o := (addr + uint32(i)) & (pageSize - 1)
		run := pageSize - int(o)
		if run > n-i {
			run = n - i
		}
		if p != nil {
			clear(p[o : int(o)+run])
		}
		i += run
	}
}

// PageCount returns the number of allocated pages (useful for memory
// footprint assertions in tests).
func (m *Memory) PageCount() int { return len(m.pages) }

// Equal reports whether two memories hold identical contents. Pages
// allocated in one but not the other count as equal when all-zero, since
// unallocated memory reads as zero.
func (m *Memory) Equal(o *Memory) bool {
	for idx, p := range m.pages {
		q := o.pages[idx]
		if q == nil {
			if *p != (page{}) {
				return false
			}
			continue
		}
		if *p != *q {
			return false
		}
	}
	for idx, q := range o.pages {
		if m.pages[idx] == nil && *q != (page{}) {
			return false
		}
	}
	return true
}
