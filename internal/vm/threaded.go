// Block-threaded execution engine.
//
// The reference interpreter (CPU.Run) pays a fixed per-instruction tax:
// a return-address check, a step-budget check, a fetch bounds/alignment
// check, a tracer nil-check, and a 40-way opcode switch over operands
// that are re-read from the decoded Instruction on every execution. For
// the per-packet hot path — millions of simulated instructions per trace
// — that tax dominates the run time.
//
// Translate compiles the decoded text segment once, at load time, into a
// flat array of pre-decoded micro-ops grouped into the basic blocks of
// an analysis.BlockMap. Within a block the engine executes straight-line
// with no fetch checks at all: the entry PC is validated once at the
// block boundary, the step budget is charged per block (falling back to
// a truncated body only when the budget would expire mid-block), and
// every operand — register indexes, sign- or zero-extended immediates,
// the pre-shifted LUI constant, branch and jump targets — was resolved
// during translation. Static branch/JAL targets dispatch directly to the
// target instruction index; only the indirect JALR pays a full PC
// validation, exactly like the interpreter's fetch path.
//
// The engine keeps two completely separate dispatch loops: the untraced
// loop (Tracer == nil) carries zero tracing branches, while the traced
// loop reproduces the interpreter's observable event order bit for bit —
// Instr before the step is counted, Mem between the fault checks and the
// access, c.PC current at every tracer call so a panicking tracer (the
// fault injector does this on purpose) is recovered at the right PC.
//
// TranslateWithFacts goes one rung further: proof-guided translation.
// The static verifier's abstract interpretation (internal/staticcheck)
// exports per-instruction facts — proven-in-bounds memory operands,
// always/never-taken branches, redundant masks, dead blocks — and the
// translator uses them to emit unchecked load/store micro-ops (no
// alignment or region check at run time), fold proven branches, and
// rewrite identity masks to moves. Independently of facts it peephole-
// fuses adjacent same-block instruction pairs into superinstructions
// (shift+or, addi+blt latches, load+load, la's lui+ori, ...), halving
// the dispatch count on the hot idioms. The optimized body is dispatch-
// only state: the second slot of each fused pair keeps its single-op
// form so indirect entry mid-pair stays exact, budget-truncated block
// passes fall back to the unfused body, and the traced loop always runs
// the fully-checked translation so the interpreter's event order is
// preserved bit for bit. Unverified programs (Options.NoVerify) never
// reach TranslateWithFacts.
//
// The interpreter remains the oracle: for any program and input the two
// engines produce identical register files, memory images, step counts,
// stop reasons and fault kind/PC/Addr. Differential tests (threaded_test,
// core's engine-diff harness, FuzzEngineDiff) pin that contract.
package vm

import (
	"encoding/binary"

	"repro/internal/analysis"
	"repro/internal/isa"
)

// Micro-op codes. ALU ops whose destination is the zero register are
// translated to uNOP (architecturally they have no effect); loads keep
// their full fault-check/trace behavior and only the write-back is
// discarded, matching the interpreter.
const (
	uNOP uint8 = iota
	uADD
	uSUB
	uAND
	uOR
	uXOR
	uSLL
	uSRL
	uSRA
	uSLT
	uSLTU
	uMUL
	uADDI
	uANDI
	uORI
	uXORI
	uSLLI
	uSRLI
	uSRAI
	uSLTI
	uSLTIU
	uLI // rd <- imm (LUI with the <<12 applied at translation time)
	uLB
	uLBU
	uLH
	uLHU
	uLW
	uSB
	uSH
	uSW
	uBEQ
	uBNE
	uBLT
	uBGE
	uBLTU
	uBGEU
	uJAL
	uJALR
	uHALT
	uBAD // undecodable instruction: FaultBadInstr when executed

	// Proof-guided micro-ops. Everything below this line is emitted only
	// by TranslateWithFacts, never by Translate: unverified programs
	// (Options.NoVerify) always run the fully-checked codes above.

	// Unchecked memory ops: the verifier proved the access aligned and
	// inside the mapped region carried in rs2, so no alignment or
	// classification check runs at all. Loads with rd == zero are folded
	// to uNOP instead (they can neither fault nor write).
	uULB
	uULBU
	uULH
	uULHU
	uULW
	uUSB
	uUSH
	uUSW

	// uGOTO is a conditional branch the verifier proved always taken:
	// same imm/aux encoding as a branch, no comparison.
	uGOTO

	// Specialized two-instruction superinstructions for the ALU+ALU
	// pairs the guest profiler shows hottest (shift/or/mask assembly in
	// checksum and hash loops, la/li's LUI+ORI expansion, radix-walk
	// index arithmetic). First instruction in rd/rs1/rs2/imm, second in
	// rd2/rs3/rs4/imm2, executed strictly in sequence.
	uFSrliSlli
	uFSlliOr
	uFAndiOr
	uFXorSlli
	uFOrAddi
	uFLuiOri
	uFSrliAndi
	uFSlliAdd
	uFSrliAdd
	uFOrAdd
	uFAndAdd
	uFSlliSlli
	uFOrOr
	uFAndSltu
	uFXorAdd
	uFAddAddi
	uFAddiAddi

	// Specialized ALU+branch loop latches (addi+blt closes every counted
	// loop the assembler emits; and+bne closes the radix prefix check).
	uFAddiBlt
	uFAndBne

	// Generic fused pairs: the component codes live in op1/op2 and are
	// dispatched by a small inner switch. Memory components fuse only
	// when proven and carry their region in rs2 (first position) or rs4
	// (second position) — the fused cases run no fault checks, which is
	// also what keeps the dispatch loop small enough for the compiler to
	// keep inlining the page-cache accessors into it. uFAddiJal fuses
	// the mv/addi feeding a call or jump.
	uFAluBr
	uFAddiJal
	uFAluLd
	uFAluSt
	uFLdAlu
	uFLdBr
	uFLdLd
	uFLdSt

	// Specialized three-instruction ALU superinstructions for the
	// shift/or/mix chains the bit-serial loops emit (the TSA sub-key
	// walk is three of these per iteration). The head keeps the first
	// instruction in its own microOp fields; the second and third live
	// in ext[i] and ext[i+1] (both of which also keep their single-op
	// micro-op form for mid-entry via indirect jump).
	uF3SrliSlliAndi
	uF3SlliOrXor
	uF3SlliOrAddi

	// Wider data-driven superinstructions for the TSA sub-key walk, the
	// single hottest loop in the bundled apps (its body is 81% of all
	// executed instructions on the small-packet benchmark): the
	// five-instruction bit-extract chain that computes its table index,
	// and the four-instruction shift/accumulate + loop latch that closes
	// it. Same encoding scheme as the triples, one more ext slot each.
	uF4SlliOrAddiBlt
	uF5SrliSlliAndiOrAdd

	// uF7SlliOrXorSlliOrAddiBlt is the sub-key walk's entire tail — the
	// two shift/accumulate chains after its table load plus the loop
	// latch — leaving the loop at three dispatches per iteration
	// (bit-extract, table load, tail).
	uF7SlliOrXorSlliOrAddiBlt
)

// Special aux values for statically resolved control-transfer targets.
const (
	// auxFault marks a static target outside the text segment; taking the
	// transfer raises FaultBadFetch at the target PC (recomputed from the
	// imm byte offset), after the budget check, like the interpreter.
	auxFault int32 = -1
	// auxReturn marks a static target equal to ReturnAddress.
	auxReturn int32 = -2
)

// microOp is one pre-decoded instruction. Register fields are masked to
// the architectural range at translation time (and re-masked with &15 at
// the use sites, which is what actually lets the compiler drop the
// register-file bounds checks). imm holds the ready-to-use
// immediate: sign/zero-extended for ALU and memory ops, the full shifted
// constant for uLI, and for branches and uJAL the byte offset from the
// instruction's own PC to the target (4 + imm*4), which the fault path
// uses to recompute an out-of-text target address.
// A fused head keeps its first instruction in these fields, carries the
// second instruction's static control-transfer target in aux (a fused
// head is never itself a branch, so the slot is free), and finds the
// rest of the pair in its fusedExt slot. Unchecked memory ops carry
// their verifier-proven region in the otherwise unused rs2 (rs4 in
// second position).
type microOp struct {
	code uint8
	rd   uint8
	rs1  uint8
	rs2  uint8
	imm  uint32
	aux  int32 // branch/JAL target instruction index, or auxFault/auxReturn
}

// fusedExt is the second bank of operands for a fused pair, kept in a
// parallel array (Program.ext) so the plain micro-op stays 12 bytes —
// the dispatch loop's memory traffic is dominated by sequential op
// reads, and only fused heads ever touch their ext slot. rd2/rs3/rs4/
// imm2 mirror rd/rs1/rs2/imm for the pair's second instruction; op1/op2
// hold the component codes for the generic fused kinds (and the proven
// region of a second-position memory component travels in rs4).
type fusedExt struct {
	op1  uint8
	op2  uint8
	rd2  uint8
	rs3  uint8
	rs4  uint8
	imm2 uint32
}

// Program is a translated text segment, ready for block-threaded
// execution on any CPU whose text base matches the one it was translated
// for. A Program is immutable after Translate and safe to share between
// cores (each CPU carries its own mutable state).
type Program struct {
	ops []microOp
	// fops is the optimized body the untraced loop dispatches from:
	// proof-rewritten (unchecked/folded) ops with fused heads. The
	// second slot of a fused pair keeps its single-op form so indirect
	// entry into the middle of a pair stays correct, and the loop runs
	// the plain ops body instead whenever the step budget truncates a
	// block. Translate aliases fops to ops; only TranslateWithFacts
	// builds a distinct body. The traced loop always runs ops, whose
	// per-instruction event order is pinned to the interpreter.
	fops []microOp
	// ext holds the fused pairs' second-bank operands, parallel to fops
	// (nil for a plain Translate program, whose body has no fused heads).
	ext      []fusedExt
	stats    TranslateStats
	text     []isa.Instruction // original instructions, for tracer events
	textBase uint32
	blockOf  []int32 // instruction index -> block id
	blockEnd []int32 // block id -> exclusive end instruction index
	leader   []int32 // block id -> leader instruction index
	endAt    []int32 // instruction index -> exclusive end of its block
}

// NumBlocks returns the number of translated basic blocks.
func (p *Program) NumBlocks() int { return len(p.blockEnd) }

// TranslateStats summarizes what proof-guided translation changed
// relative to the fully-checked baseline. All fields are zero for a
// Program built by plain Translate.
type TranslateStats struct {
	FusedPairs      int // instruction pairs fused into superinstructions
	FusedTriples    int // instruction triples fused into superinstructions
	FusedWide       int // 4- and 5-instruction superinstructions
	UncheckedLoads  int // loads with elided alignment/region checks
	UncheckedStores int // stores with elided alignment/region checks
	FoldedBranches  int // branches proven always/never taken
	ElidedMasks     int // AND/ANDI rewritten to moves (provably identity)
	DeadBlocks      int // blocks proven unreachable (left fully checked)
}

// Stats reports the proof-guided translation summary for this program.
func (p *Program) Stats() TranslateStats { return p.stats }

// Translate compiles a decoded text segment into a block-threaded
// Program using the given basic-block decomposition, which must have
// been built from the same text and textBase.
func Translate(text []isa.Instruction, textBase uint32, blocks *analysis.BlockMap) *Program {
	n := len(text)
	p := &Program{
		ops:      make([]microOp, n),
		text:     text,
		textBase: textBase,
		blockOf:  make([]int32, n),
		blockEnd: make([]int32, blocks.NumBlocks()),
		leader:   make([]int32, blocks.NumBlocks()),
		endAt:    make([]int32, n),
	}
	for b := 0; b < blocks.NumBlocks(); b++ {
		p.blockEnd[b] = int32(blocks.EndIndex(b))
		p.leader[b] = int32(blocks.LeaderIndex(b))
	}
	for i, in := range text {
		p.blockOf[i] = int32(blocks.BlockOfIndex(i))
		p.endAt[i] = p.blockEnd[p.blockOf[i]]
		p.ops[i] = translateOne(i, in, textBase, n)
	}
	p.fops = p.ops
	return p
}

// TranslateWithFacts compiles like Translate and then optimizes the
// untraced dispatch body using verifier-proven facts: proven loads and
// stores become unchecked micro-ops, proven-direction branches fold to
// uNOP/uGOTO, provably redundant masks become moves, and adjacent
// instruction pairs inside a block fuse into superinstructions. A nil
// facts still fuses pairs that need no proof (ALU/branch/checked-load
// idioms) but emits no unchecked memory op and folds nothing — the
// no-proof-no-elision contract tests pin exactly that.
//
// Dead blocks keep their fully-checked, unfused translation: facts
// claim nothing about them, so nothing may be optimized there.
func TranslateWithFacts(text []isa.Instruction, textBase uint32, blocks *analysis.BlockMap, facts *TranslationFacts) *Program {
	p := Translate(text, textBase, blocks)
	n := len(text)
	if n == 0 {
		return p
	}
	fops := make([]microOp, n)
	copy(fops, p.ops)

	if facts != nil {
		for i := 0; i < n; i++ {
			if facts.deadAt(int(p.blockOf[i])) {
				continue
			}
			op := &fops[i]
			switch op.code {
			case uLB, uLBU, uLH, uLHU, uLW:
				if r := facts.memAt(i); r != RegionNone {
					if op.rd == 0 {
						// Cannot fault, cannot write: architecturally inert.
						*op = microOp{code: uNOP}
					} else {
						op.code = op.code - uLB + uULB
						op.rs2 = uint8(r)
					}
					p.stats.UncheckedLoads++
				}
			case uSB, uSH, uSW:
				if r := facts.memAt(i); r != RegionNone {
					op.code = op.code - uSB + uUSB
					op.rs2 = uint8(r)
					p.stats.UncheckedStores++
				}
			case uAND, uANDI:
				if facts.redundantAt(i) {
					// The mask provably keeps every possibly-set source
					// bit: the op is a register move.
					if op.rd == op.rs1 {
						*op = microOp{code: uNOP}
					} else {
						*op = microOp{code: uADDI, rd: op.rd, rs1: op.rs1}
					}
					p.stats.ElidedMasks++
				}
			case uBEQ, uBNE, uBLT, uBGE, uBLTU, uBGEU:
				switch facts.branchAt(i) {
				case BranchNever:
					*op = microOp{code: uNOP}
					p.stats.FoldedBranches++
				case BranchAlways:
					op.code = uGOTO
					p.stats.FoldedBranches++
				}
			}
		}
		for b := 0; b < blocks.NumBlocks(); b++ {
			if facts.deadAt(b) {
				p.stats.DeadBlocks++
			}
		}
	}

	// Greedy left-to-right peephole pairing within each block. The head
	// slot takes the fused form; the consumed slots keep their single-op
	// form so an indirect jump landing mid-group executes correctly, and
	// sequential execution skips them. Triples are matched before pairs:
	// a triple always saves one more dispatch than any pairing of the
	// same three instructions.
	//
	// Fusion is gated per program: the fused dispatch loop carries a
	// bigger switch than the plain one, so a program whose hot loops
	// barely fuse pays the larger-loop tax on every dispatch and wins
	// nothing back. The trial below records the weighted dispatch
	// reduction (loop bodies, where dispatches actually repeat, count
	// fuseLoopWeight times) and the fused body is kept only when the
	// estimated reduction clears fuseKeepPct.
	rewrote := p.stats.UncheckedLoads+p.stats.UncheckedStores+
		p.stats.FoldedBranches+p.stats.ElidedMasks > 0
	base := make([]microOp, n)
	copy(base, fops)
	weight := loopWeights(fops, n)
	var savedW, totalW uint64
	for i := 0; i < n; i++ {
		totalW += weight[i]
	}
	ext := make([]fusedExt, n)
	for i := 0; i < n-1; i++ {
		if p.endAt[i] != p.endAt[i+1] || facts.deadAt(int(p.blockOf[i])) {
			continue
		}
		if i+6 < n && p.endAt[i] == p.endAt[i+6] &&
			fops[i].code == uSLLI && fops[i+1].code == uOR && fops[i+2].code == uXOR &&
			fops[i+3].code == uSLLI && fops[i+4].code == uOR && fops[i+5].code == uADDI &&
			fops[i+6].code == uBLT {
			for k := 1; k <= 6; k++ {
				ext[i+k-1] = singleExt(&fops[i+k])
			}
			fops[i].code, fops[i].aux = uF7SlliOrXorSlliOrAddiBlt, fops[i+6].aux
			p.stats.FusedWide++
			savedW += 6 * weight[i]
			i += 6
			continue
		}
		if i+4 < n && p.endAt[i] == p.endAt[i+4] &&
			fops[i].code == uSRLI && fops[i+1].code == uSLLI && fops[i+2].code == uANDI &&
			fops[i+3].code == uOR && fops[i+4].code == uADD {
			for k := 1; k <= 4; k++ {
				ext[i+k-1] = singleExt(&fops[i+k])
			}
			fops[i].code = uF5SrliSlliAndiOrAdd
			p.stats.FusedWide++
			savedW += 4 * weight[i]
			i += 4
			continue
		}
		if i+3 < n && p.endAt[i] == p.endAt[i+3] &&
			fops[i].code == uSLLI && fops[i+1].code == uOR &&
			fops[i+2].code == uADDI && fops[i+3].code == uBLT {
			for k := 1; k <= 3; k++ {
				ext[i+k-1] = singleExt(&fops[i+k])
			}
			// The latch's static target rides in the head's aux slot (the
			// head is an ALU op, so the slot is free, same as for pairs).
			fops[i].code, fops[i].aux = uF4SlliOrAddiBlt, fops[i+3].aux
			p.stats.FusedWide++
			savedW += 3 * weight[i]
			i += 3
			continue
		}
		if i+2 < n && p.endAt[i] == p.endAt[i+2] {
			key := [3]uint8{fops[i].code, fops[i+1].code, fops[i+2].code}
			if code, ok := fuseAAA[key]; ok {
				ext[i] = singleExt(&fops[i+1])
				ext[i+1] = singleExt(&fops[i+2])
				fops[i].code = code
				p.stats.FusedTriples++
				savedW += 2 * weight[i]
				i += 2 // neither consumed slot can also start a group
				continue
			}
		}
		if fused, fx, ok := fusePair(&fops[i], &fops[i+1]); ok {
			fops[i], ext[i] = fused, fx
			p.stats.FusedPairs++
			savedW += weight[i]
			i++ // the consumed slot cannot also start a pair
		}
	}
	if savedW*100 >= totalW*fuseKeepPct {
		p.fops, p.ext = fops, ext
		return p
	}
	// Fusion gated off: the estimated dispatch reduction does not pay
	// for the fused loop's larger switch. Keep the facts rewrites (they
	// only remove work) on the pre-fusion body; a program with no
	// rewrites either runs the plain loop with the plain body.
	p.stats.FusedPairs, p.stats.FusedTriples, p.stats.FusedWide = 0, 0, 0
	if rewrote {
		// The trial's ext slots are unreachable: base has no fused heads,
		// and only a fused head ever reads its ext slot.
		p.fops, p.ext = base, ext
	}
	return p
}

// Fusion gate parameters: an instruction inside a statically detected
// loop (spanned by a backward branch) counts fuseLoopWeight dispatches
// against one for straight-line code, and the fused body is kept only
// when it eliminates at least fuseKeepPct percent of the weighted
// dispatches. 64 approximates the bundled apps' per-packet iteration
// counts (table walks of 16-64 rounds); 20% is roughly where the
// measured fused-loop tax breaks even on the dispatch benchmarks.
const (
	fuseLoopWeight = 64
	fuseKeepPct    = 20
)

// loopWeights estimates each instruction's relative dynamic dispatch
// frequency from the translated control flow alone: every backward
// static control transfer (branch, folded uGOTO, or JAL with a target
// at or before itself) marks its span as a loop, and instructions
// inside at least one such span weigh fuseLoopWeight.
func loopWeights(ops []microOp, n int) []uint64 {
	depth := make([]int32, n+1)
	for i := 0; i < n; i++ {
		code := ops[i].code
		if !isBranchCode(code) && code != uGOTO && code != uJAL {
			continue
		}
		if t := ops[i].aux; t >= 0 && int(t) <= i {
			depth[t]++
			depth[i+1]--
		}
	}
	w := make([]uint64, n)
	var d int32
	for i := 0; i < n; i++ {
		d += depth[i]
		if d > 0 {
			w[i] = fuseLoopWeight
		} else {
			w[i] = 1
		}
	}
	return w
}

// fuseAA maps specialized ALU+ALU pairs to their superinstruction.
var fuseAA = map[[2]uint8]uint8{
	{uSRLI, uSLLI}: uFSrliSlli,
	{uSLLI, uOR}:   uFSlliOr,
	{uANDI, uOR}:   uFAndiOr,
	{uXOR, uSLLI}:  uFXorSlli,
	{uOR, uADDI}:   uFOrAddi,
	{uLI, uORI}:    uFLuiOri,
	{uSRLI, uANDI}: uFSrliAndi,
	{uSLLI, uADD}:  uFSlliAdd,
	{uSRLI, uADD}:  uFSrliAdd,
	{uOR, uADD}:    uFOrAdd,
	{uAND, uADD}:   uFAndAdd,
	{uSLLI, uSLLI}: uFSlliSlli,
	{uOR, uOR}:     uFOrOr,
	{uAND, uSLTU}:  uFAndSltu,
	{uXOR, uADD}:   uFXorAdd,
	{uADD, uADDI}:  uFAddAddi,
	{uADDI, uADDI}: uFAddiAddi,
}

// singleExt packs a micro-op into the ext-slot operand form used by the
// second and later members of a fused group.
func singleExt(op *microOp) fusedExt {
	return fusedExt{op1: op.code, rd2: op.rd, rs3: op.rs1, rs4: op.rs2, imm2: op.imm}
}

// fuseAAA maps specialized ALU+ALU+ALU triples to their
// superinstruction. The three patterns are the shift/accumulate chains
// of the TSA sub-key loop, where each saved dispatch repeats 16×256
// times per packet.
var fuseAAA = map[[3]uint8]uint8{
	{uSRLI, uSLLI, uANDI}: uF3SrliSlliAndi,
	{uSLLI, uOR, uXOR}:    uF3SlliOrXor,
	{uSLLI, uOR, uADDI}:   uF3SlliOrAddi,
}

// isMiniALU reports whether code is in the small ALU subset the generic
// fused kinds can dispatch (the inner switch in the exec cases must
// cover exactly this set).
func isMiniALU(code uint8) bool {
	switch code {
	case uADD, uADDI, uAND, uANDI, uOR, uORI, uXOR, uSLLI, uSRLI, uLI:
		return true
	}
	return false
}

func isBranchCode(code uint8) bool { return code >= uBEQ && code <= uBGEU }

// normLoad classifies a load micro-op for fusion: ok, the plain
// component code (uLB..uLW), and the proven region. Only unchecked
// (proven) loads fuse: a checked load component would drag the full
// alignment/region fault paths into every fused case, and the size of
// those paths is what decides whether the compiler may keep inlining
// the page-cache accessors into the dispatch loop at all.
func normLoad(op *microOp) (ok bool, code, region uint8) {
	if op.code >= uULB && op.code <= uULW {
		return true, op.code - uULB + uLB, op.rs2
	}
	return false, 0, 0
}

// fusePair tries to fuse two adjacent same-block micro-ops into one
// superinstruction. Sequential semantics are preserved exactly: the
// first instruction's effects (including register writes) land before
// the second executes or faults, and a fault in the second half reports
// the second instruction's PC.
func fusePair(a, b *microOp) (microOp, fusedExt, bool) {
	f := microOp{rd: a.rd, rs1: a.rs1, rs2: a.rs2, imm: a.imm, aux: b.aux}
	x := fusedExt{op1: a.code, op2: b.code, rd2: b.rd, rs3: b.rs1, rs4: b.rs2, imm2: b.imm}
	if code, ok := fuseAA[[2]uint8{a.code, b.code}]; ok {
		f.code = code
		return f, x, true
	}
	aALU := isMiniALU(a.code)
	aLoad, aLC, aLR := normLoad(a)
	bLoad, bLC, bLR := normLoad(b)
	bUStore := b.code >= uUSB && b.code <= uUSW
	switch {
	case aALU && isBranchCode(b.code):
		switch {
		case a.code == uADDI && b.code == uBLT:
			f.code = uFAddiBlt
		case a.code == uAND && b.code == uBNE:
			f.code = uFAndBne
		default:
			f.code = uFAluBr
		}
		return f, x, true
	case a.code == uADDI && b.code == uJAL:
		f.code = uFAddiJal
		return f, x, true
	case aALU && bLoad:
		f.code, x.op2, x.rs4 = uFAluLd, bLC, bLR
		return f, x, true
	case aALU && bUStore:
		f.code, x.op2, x.rs4 = uFAluSt, b.code-uUSB+uSB, b.rs2
		return f, x, true
	case aLoad && isMiniALU(b.code):
		f.code, x.op1, f.rs2 = uFLdAlu, aLC, aLR
		return f, x, true
	case aLoad && isBranchCode(b.code):
		f.code, x.op1, f.rs2 = uFLdBr, aLC, aLR
		return f, x, true
	case aLoad && bLoad:
		f.code, x.op1, f.rs2 = uFLdLd, aLC, aLR
		x.op2, x.rs4 = bLC, bLR
		return f, x, true
	case aLoad && bUStore:
		f.code, x.op1, f.rs2 = uFLdSt, aLC, aLR
		x.op2, x.rs4 = b.code-uUSB+uSB, b.rs2
		return f, x, true
	}
	return microOp{}, fusedExt{}, false
}

// aluCode maps the register-register and register-immediate ALU opcodes
// to their micro-op codes (same dispatch, pre-masked operands).
var aluCode = map[isa.Opcode]uint8{
	isa.ADD: uADD, isa.SUB: uSUB, isa.AND: uAND, isa.OR: uOR, isa.XOR: uXOR,
	isa.SLL: uSLL, isa.SRL: uSRL, isa.SRA: uSRA, isa.SLT: uSLT, isa.SLTU: uSLTU,
	isa.MUL:  uMUL,
	isa.ADDI: uADDI, isa.ANDI: uANDI, isa.ORI: uORI, isa.XORI: uXORI,
	isa.SLLI: uSLLI, isa.SRLI: uSRLI, isa.SRAI: uSRAI, isa.SLTI: uSLTI,
	isa.SLTIU: uSLTIU,
}

var memCode = map[isa.Opcode]uint8{
	isa.LB: uLB, isa.LBU: uLBU, isa.LH: uLH, isa.LHU: uLHU, isa.LW: uLW,
	isa.SB: uSB, isa.SH: uSH, isa.SW: uSW,
}

var branchCode = map[isa.Opcode]uint8{
	isa.BEQ: uBEQ, isa.BNE: uBNE, isa.BLT: uBLT,
	isa.BGE: uBGE, isa.BLTU: uBLTU, isa.BGEU: uBGEU,
}

func translateOne(i int, in isa.Instruction, textBase uint32, n int) microOp {
	op := microOp{
		rd:  uint8(in.Rd) & 15,
		rs1: uint8(in.Rs1) & 15,
		rs2: uint8(in.Rs2) & 15,
		imm: uint32(in.Imm),
	}
	pc := textBase + uint32(i)*isa.WordSize
	switch {
	case aluCode[in.Op] != 0:
		if in.Rd == isa.Zero {
			return microOp{code: uNOP}
		}
		op.code = aluCode[in.Op]
	case in.Op == isa.LUI:
		if in.Rd == isa.Zero {
			return microOp{code: uNOP}
		}
		op.code = uLI
		op.imm = uint32(in.Imm) << 12
	case memCode[in.Op] != 0:
		op.code = memCode[in.Op]
	case branchCode[in.Op] != 0:
		op.code = branchCode[in.Op]
		op.imm = isa.WordSize + uint32(in.Imm)*isa.WordSize // byte offset from pc
		op.aux = staticTarget(pc+op.imm, textBase, n)
	case in.Op == isa.JAL:
		op.code = uJAL
		op.imm = isa.WordSize + uint32(in.Imm)*isa.WordSize
		op.aux = staticTarget(pc+op.imm, textBase, n)
	case in.Op == isa.JALR:
		op.code = uJALR
	case in.Op == isa.HALT:
		op.code = uHALT
	default:
		op.code = uBAD
	}
	return op
}

// staticTarget resolves a translation-time-known control transfer target
// to an instruction index, using the interpreter's exact uint32 wrapping
// semantics for the bounds test.
func staticTarget(target, textBase uint32, n int) int32 {
	if target == ReturnAddress {
		return auxReturn
	}
	off := target - textBase
	if off%isa.WordSize == 0 && off/isa.WordSize < uint32(n) {
		return int32(off / isa.WordSize)
	}
	return auxFault
}

// BlockTracer is an optional Tracer extension: an engine that already
// knows the basic-block structure (the block-threaded engine) reports
// block entries directly, so a block-aware tracer (the statistics
// collector) does not have to re-derive the block of every instruction.
// EnterBlock is called once per dynamic block entry, before the entry
// instruction's Instr event; leader reports whether execution entered at
// the block's first instruction (false only for indirect jumps into the
// middle of a block).
type BlockTracer interface {
	Tracer
	EnterBlock(b int, leader bool)
}

// EnterBlock implements BlockTracer by fanning out to the members that
// are themselves block-aware.
func (m MultiTracer) EnterBlock(b int, leader bool) {
	for _, t := range m {
		if bt, ok := t.(BlockTracer); ok {
			bt.EnterBlock(b, leader)
		}
	}
}

// RunProgram executes the translated program starting at c.PC until the
// application halts, returns to ReturnAddress, faults, or exceeds
// maxSteps — the block-threaded equivalent of Run, with the identical
// observable contract: same final registers and memory, same step count,
// same stop reason, and the same fault kind, PC and address on every
// failure. p must have been translated from the text segment and base
// this CPU was created with.
//
// With a nil Tracer the untraced dispatch loop runs: no tracing branches,
// per-block step accounting, and c.PC/c.packetWriteHigh updated only at
// run exit. With a Tracer attached the traced loop reproduces the
// interpreter's per-instruction event order exactly (Instr before the
// step is counted, Mem between the fault checks and the access, c.PC
// current at every hook) so tracer-driven fault injection behaves
// identically under both engines.
func (c *CPU) RunProgram(p *Program, maxSteps uint64) (steps uint64, reason StopReason, err error) {
	if c.Tracer != nil {
		return c.runTraced(p, maxSteps)
	}
	if p.ext != nil {
		return c.runFused(p, maxSteps)
	}
	return c.runFast(p, maxSteps)
}

// runFast is the untraced dispatch loop.
func (c *CPU) runFast(p *Program, maxSteps uint64) (steps uint64, reason StopReason, rerr error) {
	regs := &c.Regs
	layout := c.Layout
	ops := p.ops
	endAt := p.endAt
	textBase := p.textBase
	n := uint32(len(ops))
	pktHigh := c.packetWriteHigh
	defer func() { //pblint:allow — once per run, not per dispatch
		c.steps += steps
		if pktHigh > c.packetWriteHigh {
			c.packetWriteHigh = pktHigh
		}
	}()

	pcv := c.PC // pending control-transfer target, when idx < 0
	idx := -1   // entry instruction index, when >= 0 (already validated in-text)
outer:
	for {
		if idx < 0 {
			// Slow entry: arbitrary PC (run start, JALR, out-of-text
			// static targets, fall-through past the end). The check order
			// matches the interpreter: return address, budget, fetch.
			if pcv == ReturnAddress {
				c.PC = pcv
				return steps, StopReturn, nil
			}
			if steps >= maxSteps {
				c.PC = pcv
				return steps, 0, &Fault{Kind: FaultStepLimit, PC: pcv}
			}
			off := pcv - textBase
			if off%isa.WordSize != 0 || off/isa.WordSize >= n {
				c.PC = pcv
				return steps, 0, &Fault{Kind: FaultBadFetch, PC: pcv}
			}
			idx = int(off / isa.WordSize)
		} else if steps >= maxSteps {
			pc := textBase + uint32(idx)*isa.WordSize
			c.PC = pc
			return steps, 0, &Fault{Kind: FaultStepLimit, PC: pc}
		}

		end := int(endAt[idx])
		if rem := maxSteps - steps; uint64(end-idx) > rem {
			// The budget expires mid-block: execute only the affordable
			// prefix; the re-entry check above raises the step-limit
			// fault at the exact instruction the interpreter would.
			end = idx + int(rem)
		}
		if end > len(ops) {
			// Never taken (endAt values are block bounds); it teaches the
			// compiler end <= len(ops) so ops[j] below needs no bounds
			// check.
			end = len(ops)
		}
		pc := textBase + uint32(idx)*isa.WordSize
		for j := idx; j < end; j++ {
			op := &ops[j]
			switch op.code {
			case uNOP:
			case uADD:
				regs[op.rd&15] = regs[op.rs1&15] + regs[op.rs2&15]
			case uSUB:
				regs[op.rd&15] = regs[op.rs1&15] - regs[op.rs2&15]
			case uAND:
				regs[op.rd&15] = regs[op.rs1&15] & regs[op.rs2&15]
			case uOR:
				regs[op.rd&15] = regs[op.rs1&15] | regs[op.rs2&15]
			case uXOR:
				regs[op.rd&15] = regs[op.rs1&15] ^ regs[op.rs2&15]
			case uSLL:
				regs[op.rd&15] = regs[op.rs1&15] << (regs[op.rs2&15] & 31)
			case uSRL:
				regs[op.rd&15] = regs[op.rs1&15] >> (regs[op.rs2&15] & 31)
			case uSRA:
				regs[op.rd&15] = uint32(int32(regs[op.rs1&15]) >> (regs[op.rs2&15] & 31))
			case uSLT:
				regs[op.rd&15] = b2u(int32(regs[op.rs1&15]) < int32(regs[op.rs2&15]))
			case uSLTU:
				regs[op.rd&15] = b2u(regs[op.rs1&15] < regs[op.rs2&15])
			case uMUL:
				regs[op.rd&15] = regs[op.rs1&15] * regs[op.rs2&15]
			case uADDI:
				regs[op.rd&15] = regs[op.rs1&15] + op.imm
			case uANDI:
				regs[op.rd&15] = regs[op.rs1&15] & op.imm
			case uORI:
				regs[op.rd&15] = regs[op.rs1&15] | op.imm
			case uXORI:
				regs[op.rd&15] = regs[op.rs1&15] ^ op.imm
			case uSLLI:
				regs[op.rd&15] = regs[op.rs1&15] << (op.imm & 31)
			case uSRLI:
				regs[op.rd&15] = regs[op.rs1&15] >> (op.imm & 31)
			case uSRAI:
				regs[op.rd&15] = uint32(int32(regs[op.rs1&15]) >> (op.imm & 31))
			case uSLTI:
				regs[op.rd&15] = b2u(int32(regs[op.rs1&15]) < int32(op.imm))
			case uSLTIU:
				regs[op.rd&15] = b2u(regs[op.rs1&15] < op.imm)
			case uLI:
				regs[op.rd&15] = op.imm

			case uLB:
				addr := regs[op.rs1&15] + op.imm
				r := layout.Classify(addr)
				if r == RegionNone || r == RegionText {
					steps += uint64(j-idx) + 1
					c.PC = pc
					return steps, 0, &Fault{Kind: FaultUnmapped, PC: pc, Addr: addr}
				}
				if op.rd != 0 {
					regs[op.rd&15] = uint32(int32(int8(c.cachedRead8(addr))))
				}
			case uLBU:
				addr := regs[op.rs1&15] + op.imm
				r := layout.Classify(addr)
				if r == RegionNone || r == RegionText {
					steps += uint64(j-idx) + 1
					c.PC = pc
					return steps, 0, &Fault{Kind: FaultUnmapped, PC: pc, Addr: addr}
				}
				if op.rd != 0 {
					regs[op.rd&15] = uint32(c.cachedRead8(addr))
				}
			case uLH:
				addr := regs[op.rs1&15] + op.imm
				_, f := c.checkData(addr, 1, pc, layout)
				if f != nil {
					steps += uint64(j-idx) + 1
					c.PC = pc
					return steps, 0, f
				}
				if op.rd != 0 {
					regs[op.rd&15] = uint32(int32(int16(c.cachedRead16(addr))))
				}
			case uLHU:
				addr := regs[op.rs1&15] + op.imm
				_, f := c.checkData(addr, 1, pc, layout)
				if f != nil {
					steps += uint64(j-idx) + 1
					c.PC = pc
					return steps, 0, f
				}
				if op.rd != 0 {
					regs[op.rd&15] = uint32(c.cachedRead16(addr))
				}
			case uLW:
				addr := regs[op.rs1&15] + op.imm
				_, f := c.checkData(addr, 3, pc, layout)
				if f != nil {
					steps += uint64(j-idx) + 1
					c.PC = pc
					return steps, 0, f
				}
				if op.rd != 0 {
					regs[op.rd&15] = c.cachedRead32(addr)
				}

			case uSB:
				addr := regs[op.rs1&15] + op.imm
				region := layout.Classify(addr)
				if region == RegionText || region == RegionNone {
					steps += uint64(j-idx) + 1
					c.PC = pc
					return steps, 0, storeFault(region, pc, addr)
				}
				if region == RegionPacket && addr+1 > pktHigh {
					pktHigh = addr + 1
				}
				pg := c.cachedPage(addr)
				pg[addr&(pageSize-1)] = uint8(regs[op.rd&15])
			case uSH:
				addr := regs[op.rs1&15] + op.imm
				if addr&1 != 0 {
					steps += uint64(j-idx) + 1
					c.PC = pc
					return steps, 0, &Fault{Kind: FaultUnaligned, PC: pc, Addr: addr}
				}
				region := layout.Classify(addr)
				if region == RegionText || region == RegionNone {
					steps += uint64(j-idx) + 1
					c.PC = pc
					return steps, 0, storeFault(region, pc, addr)
				}
				if region == RegionPacket && addr+2 > pktHigh {
					pktHigh = addr + 2
				}
				pg := c.cachedPage(addr)
				o := addr & (pageSize - 1)
				binary.LittleEndian.PutUint16(pg[o:o+2:o+2], uint16(regs[op.rd&15]))
			case uSW:
				addr := regs[op.rs1&15] + op.imm
				if addr&3 != 0 {
					steps += uint64(j-idx) + 1
					c.PC = pc
					return steps, 0, &Fault{Kind: FaultUnaligned, PC: pc, Addr: addr}
				}
				region := layout.Classify(addr)
				if region == RegionText || region == RegionNone {
					steps += uint64(j-idx) + 1
					c.PC = pc
					return steps, 0, storeFault(region, pc, addr)
				}
				if region == RegionPacket && addr+4 > pktHigh {
					pktHigh = addr + 4
				}
				pg := c.cachedPage(addr)
				o := addr & (pageSize - 1)
				binary.LittleEndian.PutUint32(pg[o:o+4:o+4], regs[op.rd&15])

			case uBEQ:
				if regs[op.rs1&15] == regs[op.rs2&15] {
					steps += uint64(j-idx) + 1
					idx, pcv = branchTo(op, pc)
					continue outer
				}
			case uBNE:
				if regs[op.rs1&15] != regs[op.rs2&15] {
					steps += uint64(j-idx) + 1
					idx, pcv = branchTo(op, pc)
					continue outer
				}
			case uBLT:
				if int32(regs[op.rs1&15]) < int32(regs[op.rs2&15]) {
					steps += uint64(j-idx) + 1
					idx, pcv = branchTo(op, pc)
					continue outer
				}
			case uBGE:
				if int32(regs[op.rs1&15]) >= int32(regs[op.rs2&15]) {
					steps += uint64(j-idx) + 1
					idx, pcv = branchTo(op, pc)
					continue outer
				}
			case uBLTU:
				if regs[op.rs1&15] < regs[op.rs2&15] {
					steps += uint64(j-idx) + 1
					idx, pcv = branchTo(op, pc)
					continue outer
				}
			case uBGEU:
				if regs[op.rs1&15] >= regs[op.rs2&15] {
					steps += uint64(j-idx) + 1
					idx, pcv = branchTo(op, pc)
					continue outer
				}

			case uJAL:
				if op.rd != 0 {
					regs[op.rd&15] = pc + isa.WordSize
				}
				steps += uint64(j-idx) + 1
				idx, pcv = branchTo(op, pc)
				continue outer
			case uJALR:
				target := (regs[op.rs1&15] + op.imm) &^ 3
				if op.rd != 0 {
					regs[op.rd&15] = pc + isa.WordSize
				}
				steps += uint64(j-idx) + 1
				idx, pcv = -1, target
				continue outer

			case uHALT:
				steps += uint64(j-idx) + 1
				c.PC = pc
				return steps, StopHalt, nil
			case uBAD:
				steps += uint64(j-idx) + 1
				c.PC = pc
				return steps, 0, &Fault{Kind: FaultBadInstr, PC: pc}
			}
			pc += isa.WordSize
		}
		// Block body exhausted without a control transfer: either the
		// budget truncated it, the block was split by a following leader,
		// or execution ran past the last instruction. The re-entry checks
		// sort the three cases out (step limit / next block / bad fetch).
		steps += uint64(end - idx)
		if uint32(end) < n {
			idx = end
		} else {
			idx, pcv = -1, textBase+uint32(end)*isa.WordSize
		}
	}
}

// runFused is the untraced dispatch loop for proof-guided programs
// (TranslateWithFacts): the plain loop plus unchecked memory micro-ops,
// uGOTO, and fused superinstructions. It is a separate copy of runFast
// rather than extra cases in it because the case count is hot real
// estate: every case body added to the plain loop pushed it toward the
// compiler's "big function" threshold and measurably slowed programs
// that never execute a single fused op.
func (c *CPU) runFused(p *Program, maxSteps uint64) (steps uint64, reason StopReason, rerr error) {
	regs := &c.Regs
	layout := c.Layout
	ops := p.fops
	plain := p.ops
	ext := p.ext
	endAt := p.endAt
	textBase := p.textBase
	n := uint32(len(ops))
	pktHigh := c.packetWriteHigh
	defer func() { //pblint:allow — once per run, not per dispatch
		c.steps += steps
		if pktHigh > c.packetWriteHigh {
			c.packetWriteHigh = pktHigh
		}
	}()

	pcv := c.PC // pending control-transfer target, when idx < 0
	idx := -1   // entry instruction index, when >= 0 (already validated in-text)
outer:
	for {
		if idx < 0 {
			// Slow entry: arbitrary PC (run start, JALR, out-of-text
			// static targets, fall-through past the end). The check order
			// matches the interpreter: return address, budget, fetch.
			if pcv == ReturnAddress {
				c.PC = pcv
				return steps, StopReturn, nil
			}
			if steps >= maxSteps {
				c.PC = pcv
				return steps, 0, &Fault{Kind: FaultStepLimit, PC: pcv}
			}
			off := pcv - textBase
			if off%isa.WordSize != 0 || off/isa.WordSize >= n {
				c.PC = pcv
				return steps, 0, &Fault{Kind: FaultBadFetch, PC: pcv}
			}
			idx = int(off / isa.WordSize)
		} else if steps >= maxSteps {
			pc := textBase + uint32(idx)*isa.WordSize
			c.PC = pc
			return steps, 0, &Fault{Kind: FaultStepLimit, PC: pc}
		}

		body := ops
		end := int(endAt[idx])
		if rem := maxSteps - steps; uint64(end-idx) > rem {
			// The budget expires mid-block: execute only the affordable
			// prefix; the re-entry check above raises the step-limit
			// fault at the exact instruction the interpreter would. The
			// truncated pass runs the unfused body — a fused head at the
			// cut would execute one instruction past the budget.
			end = idx + int(rem)
			body = plain
		}
		if end > len(body) {
			// Never taken (endAt values are block bounds); it teaches the
			// compiler end <= len(body) so body[j] below needs no bounds
			// check.
			end = len(body)
		}
		if end > len(ext) {
			// Never taken either (ext parallels ops and fops); it teaches
			// the compiler end <= len(ext) so &ext[j] in the fused cases
			// needs no bounds check.
			end = len(ext)
		}
		pc := textBase + uint32(idx)*isa.WordSize
		for j := idx; j < end; j++ {
			op := &body[j]
			switch op.code {
			case uNOP:
			case uADD:
				regs[op.rd&15] = regs[op.rs1&15] + regs[op.rs2&15]
			case uSUB:
				regs[op.rd&15] = regs[op.rs1&15] - regs[op.rs2&15]
			case uAND:
				regs[op.rd&15] = regs[op.rs1&15] & regs[op.rs2&15]
			case uOR:
				regs[op.rd&15] = regs[op.rs1&15] | regs[op.rs2&15]
			case uXOR:
				regs[op.rd&15] = regs[op.rs1&15] ^ regs[op.rs2&15]
			case uSLL:
				regs[op.rd&15] = regs[op.rs1&15] << (regs[op.rs2&15] & 31)
			case uSRL:
				regs[op.rd&15] = regs[op.rs1&15] >> (regs[op.rs2&15] & 31)
			case uSRA:
				regs[op.rd&15] = uint32(int32(regs[op.rs1&15]) >> (regs[op.rs2&15] & 31))
			case uSLT:
				regs[op.rd&15] = b2u(int32(regs[op.rs1&15]) < int32(regs[op.rs2&15]))
			case uSLTU:
				regs[op.rd&15] = b2u(regs[op.rs1&15] < regs[op.rs2&15])
			case uMUL:
				regs[op.rd&15] = regs[op.rs1&15] * regs[op.rs2&15]
			case uADDI:
				regs[op.rd&15] = regs[op.rs1&15] + op.imm
			case uANDI:
				regs[op.rd&15] = regs[op.rs1&15] & op.imm
			case uORI:
				regs[op.rd&15] = regs[op.rs1&15] | op.imm
			case uXORI:
				regs[op.rd&15] = regs[op.rs1&15] ^ op.imm
			case uSLLI:
				regs[op.rd&15] = regs[op.rs1&15] << (op.imm & 31)
			case uSRLI:
				regs[op.rd&15] = regs[op.rs1&15] >> (op.imm & 31)
			case uSRAI:
				regs[op.rd&15] = uint32(int32(regs[op.rs1&15]) >> (op.imm & 31))
			case uSLTI:
				regs[op.rd&15] = b2u(int32(regs[op.rs1&15]) < int32(op.imm))
			case uSLTIU:
				regs[op.rd&15] = b2u(regs[op.rs1&15] < op.imm)
			case uLI:
				regs[op.rd&15] = op.imm

			case uLB:
				addr := regs[op.rs1&15] + op.imm
				r := layout.Classify(addr)
				if r == RegionNone || r == RegionText {
					steps += uint64(j-idx) + 1
					c.PC = pc
					return steps, 0, &Fault{Kind: FaultUnmapped, PC: pc, Addr: addr}
				}
				if op.rd != 0 {
					regs[op.rd&15] = uint32(int32(int8(c.cachedRead8(addr))))
				}
			case uLBU:
				addr := regs[op.rs1&15] + op.imm
				r := layout.Classify(addr)
				if r == RegionNone || r == RegionText {
					steps += uint64(j-idx) + 1
					c.PC = pc
					return steps, 0, &Fault{Kind: FaultUnmapped, PC: pc, Addr: addr}
				}
				if op.rd != 0 {
					regs[op.rd&15] = uint32(c.cachedRead8(addr))
				}
			case uLH:
				addr := regs[op.rs1&15] + op.imm
				_, f := c.checkData(addr, 1, pc, layout)
				if f != nil {
					steps += uint64(j-idx) + 1
					c.PC = pc
					return steps, 0, f
				}
				if op.rd != 0 {
					regs[op.rd&15] = uint32(int32(int16(c.cachedRead16(addr))))
				}
			case uLHU:
				addr := regs[op.rs1&15] + op.imm
				_, f := c.checkData(addr, 1, pc, layout)
				if f != nil {
					steps += uint64(j-idx) + 1
					c.PC = pc
					return steps, 0, f
				}
				if op.rd != 0 {
					regs[op.rd&15] = uint32(c.cachedRead16(addr))
				}
			case uLW:
				addr := regs[op.rs1&15] + op.imm
				_, f := c.checkData(addr, 3, pc, layout)
				if f != nil {
					steps += uint64(j-idx) + 1
					c.PC = pc
					return steps, 0, f
				}
				if op.rd != 0 {
					regs[op.rd&15] = c.cachedRead32(addr)
				}

			case uSB:
				addr := regs[op.rs1&15] + op.imm
				region := layout.Classify(addr)
				if region == RegionText || region == RegionNone {
					steps += uint64(j-idx) + 1
					c.PC = pc
					return steps, 0, storeFault(region, pc, addr)
				}
				if region == RegionPacket && addr+1 > pktHigh {
					pktHigh = addr + 1
				}
				pg := c.cachedPage(addr)
				pg[addr&(pageSize-1)] = uint8(regs[op.rd&15])
			case uSH:
				addr := regs[op.rs1&15] + op.imm
				if addr&1 != 0 {
					steps += uint64(j-idx) + 1
					c.PC = pc
					return steps, 0, &Fault{Kind: FaultUnaligned, PC: pc, Addr: addr}
				}
				region := layout.Classify(addr)
				if region == RegionText || region == RegionNone {
					steps += uint64(j-idx) + 1
					c.PC = pc
					return steps, 0, storeFault(region, pc, addr)
				}
				if region == RegionPacket && addr+2 > pktHigh {
					pktHigh = addr + 2
				}
				pg := c.cachedPage(addr)
				o := addr & (pageSize - 1)
				binary.LittleEndian.PutUint16(pg[o:o+2:o+2], uint16(regs[op.rd&15]))
			case uSW:
				addr := regs[op.rs1&15] + op.imm
				if addr&3 != 0 {
					steps += uint64(j-idx) + 1
					c.PC = pc
					return steps, 0, &Fault{Kind: FaultUnaligned, PC: pc, Addr: addr}
				}
				region := layout.Classify(addr)
				if region == RegionText || region == RegionNone {
					steps += uint64(j-idx) + 1
					c.PC = pc
					return steps, 0, storeFault(region, pc, addr)
				}
				if region == RegionPacket && addr+4 > pktHigh {
					pktHigh = addr + 4
				}
				pg := c.cachedPage(addr)
				o := addr & (pageSize - 1)
				binary.LittleEndian.PutUint32(pg[o:o+4:o+4], regs[op.rd&15])

			case uBEQ:
				if regs[op.rs1&15] == regs[op.rs2&15] {
					steps += uint64(j-idx) + 1
					idx, pcv = branchTo(op, pc)
					continue outer
				}
			case uBNE:
				if regs[op.rs1&15] != regs[op.rs2&15] {
					steps += uint64(j-idx) + 1
					idx, pcv = branchTo(op, pc)
					continue outer
				}
			case uBLT:
				if int32(regs[op.rs1&15]) < int32(regs[op.rs2&15]) {
					steps += uint64(j-idx) + 1
					idx, pcv = branchTo(op, pc)
					continue outer
				}
			case uBGE:
				if int32(regs[op.rs1&15]) >= int32(regs[op.rs2&15]) {
					steps += uint64(j-idx) + 1
					idx, pcv = branchTo(op, pc)
					continue outer
				}
			case uBLTU:
				if regs[op.rs1&15] < regs[op.rs2&15] {
					steps += uint64(j-idx) + 1
					idx, pcv = branchTo(op, pc)
					continue outer
				}
			case uBGEU:
				if regs[op.rs1&15] >= regs[op.rs2&15] {
					steps += uint64(j-idx) + 1
					idx, pcv = branchTo(op, pc)
					continue outer
				}

			case uJAL:
				if op.rd != 0 {
					regs[op.rd&15] = pc + isa.WordSize
				}
				steps += uint64(j-idx) + 1
				idx, pcv = branchTo(op, pc)
				continue outer
			case uJALR:
				target := (regs[op.rs1&15] + op.imm) &^ 3
				if op.rd != 0 {
					regs[op.rd&15] = pc + isa.WordSize
				}
				steps += uint64(j-idx) + 1
				idx, pcv = -1, target
				continue outer

			case uHALT:
				steps += uint64(j-idx) + 1
				c.PC = pc
				return steps, StopHalt, nil
			case uBAD:
				steps += uint64(j-idx) + 1
				c.PC = pc
				return steps, 0, &Fault{Kind: FaultBadInstr, PC: pc}

			// Proof-guided micro-ops (emitted only by TranslateWithFacts;
			// the plain body run under budget truncation never contains
			// them). Unchecked memory ops run no alignment or region
			// check: the verifier proved both, and rs2 carries the proven
			// region for the page-cache slot. Proven loads with rd==zero
			// were folded to uNOP, so the write-back is unconditional.
			case uULB:
				regs[op.rd&15] = uint32(int32(int8(c.cachedRead8(regs[op.rs1&15]+op.imm))))
			case uULBU:
				regs[op.rd&15] = uint32(c.cachedRead8(regs[op.rs1&15]+op.imm))
			case uULH:
				regs[op.rd&15] = uint32(int32(int16(c.cachedRead16(regs[op.rs1&15]+op.imm))))
			case uULHU:
				regs[op.rd&15] = uint32(c.cachedRead16(regs[op.rs1&15]+op.imm))
			case uULW:
				regs[op.rd&15] = c.cachedRead32(regs[op.rs1&15]+op.imm)
			case uUSB:
				addr := regs[op.rs1&15] + op.imm
				r := Region(op.rs2)
				if r == RegionPacket && addr+1 > pktHigh {
					pktHigh = addr + 1
				}
				c.cachedPage(addr)[addr&(pageSize-1)] = uint8(regs[op.rd&15])
			case uUSH:
				addr := regs[op.rs1&15] + op.imm
				r := Region(op.rs2)
				if r == RegionPacket && addr+2 > pktHigh {
					pktHigh = addr + 2
				}
				o := addr & (pageSize - 1)
				pg := c.cachedPage(addr)
				binary.LittleEndian.PutUint16(pg[o:o+2:o+2], uint16(regs[op.rd&15]))
			case uUSW:
				addr := regs[op.rs1&15] + op.imm
				r := Region(op.rs2)
				if r == RegionPacket && addr+4 > pktHigh {
					pktHigh = addr + 4
				}
				o := addr & (pageSize - 1)
				pg := c.cachedPage(addr)
				binary.LittleEndian.PutUint32(pg[o:o+4:o+4], regs[op.rd&15])

			case uGOTO:
				steps += uint64(j-idx) + 1
				idx, pcv = branchTo(op, pc)
				continue outer

			// Specialized ALU+ALU superinstructions and loop latches: both
			// halves in one dispatch, strictly sequential so a pair writing
			// and then reading the same register behaves like the two
			// originals. These bodies are a few instructions each, so they
			// stay inline; the generic fused kinds (inner switches, memory
			// accesses) are outlined in execFused below to keep this loop
			// under the compiler's "big function" threshold.
			case uFSrliSlli:
				x := &ext[j]
				regs[op.rd&15] = regs[op.rs1&15] >> (op.imm & 31)
				regs[x.rd2&15] = regs[x.rs3&15] << (x.imm2 & 31)
				j++
				pc += isa.WordSize
			case uFSlliOr:
				x := &ext[j]
				regs[op.rd&15] = regs[op.rs1&15] << (op.imm & 31)
				regs[x.rd2&15] = regs[x.rs3&15] | regs[x.rs4&15]
				j++
				pc += isa.WordSize
			case uFAndiOr:
				x := &ext[j]
				regs[op.rd&15] = regs[op.rs1&15] & op.imm
				regs[x.rd2&15] = regs[x.rs3&15] | regs[x.rs4&15]
				j++
				pc += isa.WordSize
			case uFXorSlli:
				x := &ext[j]
				regs[op.rd&15] = regs[op.rs1&15] ^ regs[op.rs2&15]
				regs[x.rd2&15] = regs[x.rs3&15] << (x.imm2 & 31)
				j++
				pc += isa.WordSize
			case uFOrAddi:
				x := &ext[j]
				regs[op.rd&15] = regs[op.rs1&15] | regs[op.rs2&15]
				regs[x.rd2&15] = regs[x.rs3&15] + x.imm2
				j++
				pc += isa.WordSize
			case uFLuiOri:
				x := &ext[j]
				regs[op.rd&15] = op.imm
				regs[x.rd2&15] = regs[x.rs3&15] | x.imm2
				j++
				pc += isa.WordSize
			case uFSrliAndi:
				x := &ext[j]
				regs[op.rd&15] = regs[op.rs1&15] >> (op.imm & 31)
				regs[x.rd2&15] = regs[x.rs3&15] & x.imm2
				j++
				pc += isa.WordSize
			case uFSlliAdd:
				x := &ext[j]
				regs[op.rd&15] = regs[op.rs1&15] << (op.imm & 31)
				regs[x.rd2&15] = regs[x.rs3&15] + regs[x.rs4&15]
				j++
				pc += isa.WordSize
			case uFSrliAdd:
				x := &ext[j]
				regs[op.rd&15] = regs[op.rs1&15] >> (op.imm & 31)
				regs[x.rd2&15] = regs[x.rs3&15] + regs[x.rs4&15]
				j++
				pc += isa.WordSize
			case uFOrAdd:
				x := &ext[j]
				regs[op.rd&15] = regs[op.rs1&15] | regs[op.rs2&15]
				regs[x.rd2&15] = regs[x.rs3&15] + regs[x.rs4&15]
				j++
				pc += isa.WordSize
			case uFAndAdd:
				x := &ext[j]
				regs[op.rd&15] = regs[op.rs1&15] & regs[op.rs2&15]
				regs[x.rd2&15] = regs[x.rs3&15] + regs[x.rs4&15]
				j++
				pc += isa.WordSize
			case uFSlliSlli:
				x := &ext[j]
				regs[op.rd&15] = regs[op.rs1&15] << (op.imm & 31)
				regs[x.rd2&15] = regs[x.rs3&15] << (x.imm2 & 31)
				j++
				pc += isa.WordSize
			case uFOrOr:
				x := &ext[j]
				regs[op.rd&15] = regs[op.rs1&15] | regs[op.rs2&15]
				regs[x.rd2&15] = regs[x.rs3&15] | regs[x.rs4&15]
				j++
				pc += isa.WordSize
			case uFAndSltu:
				x := &ext[j]
				regs[op.rd&15] = regs[op.rs1&15] & regs[op.rs2&15]
				regs[x.rd2&15] = b2u(regs[x.rs3&15] < regs[x.rs4&15])
				j++
				pc += isa.WordSize
			case uFXorAdd:
				x := &ext[j]
				regs[op.rd&15] = regs[op.rs1&15] ^ regs[op.rs2&15]
				regs[x.rd2&15] = regs[x.rs3&15] + regs[x.rs4&15]
				j++
				pc += isa.WordSize
			case uFAddAddi:
				x := &ext[j]
				regs[op.rd&15] = regs[op.rs1&15] + regs[op.rs2&15]
				regs[x.rd2&15] = regs[x.rs3&15] + x.imm2
				j++
				pc += isa.WordSize
			case uFAddiAddi:
				x := &ext[j]
				regs[op.rd&15] = regs[op.rs1&15] + op.imm
				regs[x.rd2&15] = regs[x.rs3&15] + x.imm2
				j++
				pc += isa.WordSize
			// Triples: third instruction in ext[j+1] (in bounds whenever a
			// triple head executes — all three slots share a block, so
			// j+2 < end <= len(ext)).
			case uF3SrliSlliAndi:
				x, y := &ext[j], &ext[j+1]
				regs[op.rd&15] = regs[op.rs1&15] >> (op.imm & 31)
				regs[x.rd2&15] = regs[x.rs3&15] << (x.imm2 & 31)
				regs[y.rd2&15] = regs[y.rs3&15] & y.imm2
				j += 2
				pc += 2 * isa.WordSize
			case uF3SlliOrXor:
				x, y := &ext[j], &ext[j+1]
				regs[op.rd&15] = regs[op.rs1&15] << (op.imm & 31)
				regs[x.rd2&15] = regs[x.rs3&15] | regs[x.rs4&15]
				regs[y.rd2&15] = regs[y.rs3&15] ^ regs[y.rs4&15]
				j += 2
				pc += 2 * isa.WordSize
			case uF3SlliOrAddi:
				x, y := &ext[j], &ext[j+1]
				regs[op.rd&15] = regs[op.rs1&15] << (op.imm & 31)
				regs[x.rd2&15] = regs[x.rs3&15] | regs[x.rs4&15]
				regs[y.rd2&15] = regs[y.rs3&15] + y.imm2
				j += 2
				pc += 2 * isa.WordSize
			case uF4SlliOrAddiBlt:
				x, y, z := &ext[j], &ext[j+1], &ext[j+2]
				regs[op.rd&15] = regs[op.rs1&15] << (op.imm & 31)
				regs[x.rd2&15] = regs[x.rs3&15] | regs[x.rs4&15]
				regs[y.rd2&15] = regs[y.rs3&15] + y.imm2
				if int32(regs[z.rs3&15]) < int32(regs[z.rs4&15]) {
					steps += uint64(j-idx) + 4
					idx, pcv = branchTo2(op.aux, z.imm2, pc+3*isa.WordSize)
					continue outer
				}
				j += 3
				pc += 3 * isa.WordSize
			case uF5SrliSlliAndiOrAdd:
				x, y, z, w := &ext[j], &ext[j+1], &ext[j+2], &ext[j+3]
				regs[op.rd&15] = regs[op.rs1&15] >> (op.imm & 31)
				regs[x.rd2&15] = regs[x.rs3&15] << (x.imm2 & 31)
				regs[y.rd2&15] = regs[y.rs3&15] & y.imm2
				regs[z.rd2&15] = regs[z.rs3&15] | regs[z.rs4&15]
				regs[w.rd2&15] = regs[w.rs3&15] + regs[w.rs4&15]
				j += 4
				pc += 4 * isa.WordSize
			case uF7SlliOrXorSlliOrAddiBlt:
				x1, x2, x3 := &ext[j], &ext[j+1], &ext[j+2]
				x4, x5, x6 := &ext[j+3], &ext[j+4], &ext[j+5]
				regs[op.rd&15] = regs[op.rs1&15] << (op.imm & 31)
				regs[x1.rd2&15] = regs[x1.rs3&15] | regs[x1.rs4&15]
				regs[x2.rd2&15] = regs[x2.rs3&15] ^ regs[x2.rs4&15]
				regs[x3.rd2&15] = regs[x3.rs3&15] << (x3.imm2 & 31)
				regs[x4.rd2&15] = regs[x4.rs3&15] | regs[x4.rs4&15]
				regs[x5.rd2&15] = regs[x5.rs3&15] + x5.imm2
				if int32(regs[x6.rs3&15]) < int32(regs[x6.rs4&15]) {
					steps += uint64(j-idx) + 7
					idx, pcv = branchTo2(op.aux, x6.imm2, pc+6*isa.WordSize)
					continue outer
				}
				j += 6
				pc += 6 * isa.WordSize
			case uFAddiBlt:
				x := &ext[j]
				regs[op.rd&15] = regs[op.rs1&15] + op.imm
				if int32(regs[x.rs3&15]) < int32(regs[x.rs4&15]) {
					steps += uint64(j-idx) + 2
					idx, pcv = branchTo2(op.aux, x.imm2, pc+isa.WordSize)
					continue outer
				}
				j++
				pc += isa.WordSize
			case uFAndBne:
				x := &ext[j]
				regs[op.rd&15] = regs[op.rs1&15] & regs[op.rs2&15]
				if regs[x.rs3&15] != regs[x.rs4&15] {
					steps += uint64(j-idx) + 2
					idx, pcv = branchTo2(op.aux, x.imm2, pc+isa.WordSize)
					continue outer
				}
				j++
				pc += isa.WordSize
			case uFAddiJal:
				x := &ext[j]
				regs[op.rd&15] = regs[op.rs1&15] + op.imm
				if x.rd2 != 0 {
					regs[x.rd2&15] = pc + 2*isa.WordSize
				}
				steps += uint64(j-idx) + 2
				idx, pcv = branchTo2(op.aux, x.imm2, pc+isa.WordSize)
				continue outer
			// Generic fused superinstructions (ALU/load x load/store/
			// branch): both architectural halves in one dispatch. The
			// bodies are outlined — folding their inner switches and
			// memory accesses into this switch blows the loop past the
			// compiler's "big function" threshold, which stops the
			// page-cache accessors inlining into the checked load/store
			// cases above and costs far more than the one call. A taken
			// fused branch charges both halves and resolves from the
			// second half's own PC (pc+4).
			case uFAluBr:
				x := &ext[j]
				if c.fusedAluBr(op, x, regs) {
					steps += uint64(j-idx) + 2
					idx, pcv = branchTo2(op.aux, x.imm2, pc+isa.WordSize)
					continue outer
				}
				j++
				pc += isa.WordSize
			case uFAluLd:
				c.fusedAluLd(op, &ext[j], regs)
				j++
				pc += isa.WordSize
			case uFAluSt:
				if hi := c.fusedAluSt(op, &ext[j], regs); hi > pktHigh {
					pktHigh = hi
				}
				j++
				pc += isa.WordSize
			case uFLdAlu:
				c.fusedLdAlu(op, &ext[j], regs)
				j++
				pc += isa.WordSize
			case uFLdBr:
				x := &ext[j]
				if c.fusedLdBr(op, x, regs) {
					steps += uint64(j-idx) + 2
					idx, pcv = branchTo2(op.aux, x.imm2, pc+isa.WordSize)
					continue outer
				}
				j++
				pc += isa.WordSize
			case uFLdLd:
				c.fusedLdLd(op, &ext[j], regs)
				j++
				pc += isa.WordSize
			case uFLdSt:
				if hi := c.fusedLdSt(op, &ext[j], regs); hi > pktHigh {
					pktHigh = hi
				}
				j++
				pc += isa.WordSize
			}
			pc += isa.WordSize
		}
		// Block body exhausted without a control transfer: either the
		// budget truncated it, the block was split by a following leader,
		// or execution ran past the last instruction. The re-entry checks
		// sort the three cases out (step limit / next block / bad fetch).
		steps += uint64(end - idx)
		if uint32(end) < n {
			idx = end
		} else {
			idx, pcv = -1, textBase+uint32(end)*isa.WordSize
		}
	}
}

// Generic fused-pair bodies, outlined from runFused (see the comment at
// its generic-kind cases). Each is self-contained — the inner component
// switches are written out rather than shared so every body stays small
// enough for the page-cache accessors to inline into it, keeping a
// fused memory pair at exactly one call from the dispatch loop. Memory
// components are proven (unchecked), so none of these can fault. Fused
// stores return the packet high-water contribution (0 when the store is
// not to the packet region); the caller folds it into its watermark.

func branchTaken(code uint8, t1, t2 uint32) bool {
	switch code {
	case uBEQ:
		return t1 == t2
	case uBNE:
		return t1 != t2
	case uBLT:
		return int32(t1) < int32(t2)
	case uBGE:
		return int32(t1) >= int32(t2)
	case uBLTU:
		return t1 < t2
	default: // uBGEU
		return t1 >= t2
	}
}

func (c *CPU) fusedAluBr(op *microOp, x *fusedExt, regs *[16]uint32) bool {
	switch x.op1 {
	case uADD:
		regs[op.rd&15] = regs[op.rs1&15] + regs[op.rs2&15]
	case uADDI:
		regs[op.rd&15] = regs[op.rs1&15] + op.imm
	case uAND:
		regs[op.rd&15] = regs[op.rs1&15] & regs[op.rs2&15]
	case uANDI:
		regs[op.rd&15] = regs[op.rs1&15] & op.imm
	case uOR:
		regs[op.rd&15] = regs[op.rs1&15] | regs[op.rs2&15]
	case uORI:
		regs[op.rd&15] = regs[op.rs1&15] | op.imm
	case uXOR:
		regs[op.rd&15] = regs[op.rs1&15] ^ regs[op.rs2&15]
	case uSLLI:
		regs[op.rd&15] = regs[op.rs1&15] << (op.imm & 31)
	case uSRLI:
		regs[op.rd&15] = regs[op.rs1&15] >> (op.imm & 31)
	default: // uLI
		regs[op.rd&15] = op.imm
	}
	return branchTaken(x.op2, regs[x.rs3&15], regs[x.rs4&15])
}

func (c *CPU) fusedAluLd(op *microOp, x *fusedExt, regs *[16]uint32) {
	switch x.op1 {
	case uADD:
		regs[op.rd&15] = regs[op.rs1&15] + regs[op.rs2&15]
	case uADDI:
		regs[op.rd&15] = regs[op.rs1&15] + op.imm
	case uAND:
		regs[op.rd&15] = regs[op.rs1&15] & regs[op.rs2&15]
	case uANDI:
		regs[op.rd&15] = regs[op.rs1&15] & op.imm
	case uOR:
		regs[op.rd&15] = regs[op.rs1&15] | regs[op.rs2&15]
	case uORI:
		regs[op.rd&15] = regs[op.rs1&15] | op.imm
	case uXOR:
		regs[op.rd&15] = regs[op.rs1&15] ^ regs[op.rs2&15]
	case uSLLI:
		regs[op.rd&15] = regs[op.rs1&15] << (op.imm & 31)
	case uSRLI:
		regs[op.rd&15] = regs[op.rs1&15] >> (op.imm & 31)
	default: // uLI
		regs[op.rd&15] = op.imm
	}
	var v2 uint32
	switch x.op2 {
	case uLB:
		v2 = uint32(int32(int8(c.cachedRead8(regs[x.rs3&15]+x.imm2))))
	case uLBU:
		v2 = uint32(c.cachedRead8(regs[x.rs3&15]+x.imm2))
	case uLH:
		v2 = uint32(int32(int16(c.cachedRead16(regs[x.rs3&15]+x.imm2))))
	case uLHU:
		v2 = uint32(c.cachedRead16(regs[x.rs3&15]+x.imm2))
	default: // uLW
		v2 = c.cachedRead32(regs[x.rs3&15]+x.imm2)
	}
	if x.rd2 != 0 {
		regs[x.rd2&15] = v2
	}
}

func (c *CPU) fusedAluSt(op *microOp, x *fusedExt, regs *[16]uint32) (hi uint32) {
	switch x.op1 {
	case uADD:
		regs[op.rd&15] = regs[op.rs1&15] + regs[op.rs2&15]
	case uADDI:
		regs[op.rd&15] = regs[op.rs1&15] + op.imm
	case uAND:
		regs[op.rd&15] = regs[op.rs1&15] & regs[op.rs2&15]
	case uANDI:
		regs[op.rd&15] = regs[op.rs1&15] & op.imm
	case uOR:
		regs[op.rd&15] = regs[op.rs1&15] | regs[op.rs2&15]
	case uORI:
		regs[op.rd&15] = regs[op.rs1&15] | op.imm
	case uXOR:
		regs[op.rd&15] = regs[op.rs1&15] ^ regs[op.rs2&15]
	case uSLLI:
		regs[op.rd&15] = regs[op.rs1&15] << (op.imm & 31)
	case uSRLI:
		regs[op.rd&15] = regs[op.rs1&15] >> (op.imm & 31)
	default: // uLI
		regs[op.rd&15] = op.imm
	}
	addr := regs[x.rs3&15] + x.imm2
	r := Region(x.rs4)
	o := addr & (pageSize - 1)
	switch x.op2 {
	case uSB:
		if r == RegionPacket {
			hi = addr + 1
		}
		c.cachedPage(addr)[o] = uint8(regs[x.rd2&15])
	case uSH:
		if r == RegionPacket {
			hi = addr + 2
		}
		pg := c.cachedPage(addr)
		binary.LittleEndian.PutUint16(pg[o:o+2:o+2], uint16(regs[x.rd2&15]))
	default: // uSW
		if r == RegionPacket {
			hi = addr + 4
		}
		pg := c.cachedPage(addr)
		binary.LittleEndian.PutUint32(pg[o:o+4:o+4], regs[x.rd2&15])
	}
	return hi
}

func (c *CPU) fusedLdAlu(op *microOp, x *fusedExt, regs *[16]uint32) {
	var v uint32
	switch x.op1 {
	case uLB:
		v = uint32(int32(int8(c.cachedRead8(regs[op.rs1&15]+op.imm))))
	case uLBU:
		v = uint32(c.cachedRead8(regs[op.rs1&15]+op.imm))
	case uLH:
		v = uint32(int32(int16(c.cachedRead16(regs[op.rs1&15]+op.imm))))
	case uLHU:
		v = uint32(c.cachedRead16(regs[op.rs1&15]+op.imm))
	default: // uLW
		v = c.cachedRead32(regs[op.rs1&15]+op.imm)
	}
	if op.rd != 0 {
		regs[op.rd&15] = v
	}
	switch x.op2 {
	case uADD:
		regs[x.rd2&15] = regs[x.rs3&15] + regs[x.rs4&15]
	case uADDI:
		regs[x.rd2&15] = regs[x.rs3&15] + x.imm2
	case uAND:
		regs[x.rd2&15] = regs[x.rs3&15] & regs[x.rs4&15]
	case uANDI:
		regs[x.rd2&15] = regs[x.rs3&15] & x.imm2
	case uOR:
		regs[x.rd2&15] = regs[x.rs3&15] | regs[x.rs4&15]
	case uORI:
		regs[x.rd2&15] = regs[x.rs3&15] | x.imm2
	case uXOR:
		regs[x.rd2&15] = regs[x.rs3&15] ^ regs[x.rs4&15]
	case uSLLI:
		regs[x.rd2&15] = regs[x.rs3&15] << (x.imm2 & 31)
	case uSRLI:
		regs[x.rd2&15] = regs[x.rs3&15] >> (x.imm2 & 31)
	default: // uLI
		regs[x.rd2&15] = x.imm2
	}
}

func (c *CPU) fusedLdBr(op *microOp, x *fusedExt, regs *[16]uint32) bool {
	var v uint32
	switch x.op1 {
	case uLB:
		v = uint32(int32(int8(c.cachedRead8(regs[op.rs1&15]+op.imm))))
	case uLBU:
		v = uint32(c.cachedRead8(regs[op.rs1&15]+op.imm))
	case uLH:
		v = uint32(int32(int16(c.cachedRead16(regs[op.rs1&15]+op.imm))))
	case uLHU:
		v = uint32(c.cachedRead16(regs[op.rs1&15]+op.imm))
	default: // uLW
		v = c.cachedRead32(regs[op.rs1&15]+op.imm)
	}
	if op.rd != 0 {
		regs[op.rd&15] = v
	}
	return branchTaken(x.op2, regs[x.rs3&15], regs[x.rs4&15])
}

func (c *CPU) fusedLdLd(op *microOp, x *fusedExt, regs *[16]uint32) {
	var v uint32
	switch x.op1 {
	case uLB:
		v = uint32(int32(int8(c.cachedRead8(regs[op.rs1&15]+op.imm))))
	case uLBU:
		v = uint32(c.cachedRead8(regs[op.rs1&15]+op.imm))
	case uLH:
		v = uint32(int32(int16(c.cachedRead16(regs[op.rs1&15]+op.imm))))
	case uLHU:
		v = uint32(c.cachedRead16(regs[op.rs1&15]+op.imm))
	default: // uLW
		v = c.cachedRead32(regs[op.rs1&15]+op.imm)
	}
	if op.rd != 0 {
		regs[op.rd&15] = v
	}
	var v2 uint32
	switch x.op2 {
	case uLB:
		v2 = uint32(int32(int8(c.cachedRead8(regs[x.rs3&15]+x.imm2))))
	case uLBU:
		v2 = uint32(c.cachedRead8(regs[x.rs3&15]+x.imm2))
	case uLH:
		v2 = uint32(int32(int16(c.cachedRead16(regs[x.rs3&15]+x.imm2))))
	case uLHU:
		v2 = uint32(c.cachedRead16(regs[x.rs3&15]+x.imm2))
	default: // uLW
		v2 = c.cachedRead32(regs[x.rs3&15]+x.imm2)
	}
	if x.rd2 != 0 {
		regs[x.rd2&15] = v2
	}
}

func (c *CPU) fusedLdSt(op *microOp, x *fusedExt, regs *[16]uint32) (hi uint32) {
	var v uint32
	switch x.op1 {
	case uLB:
		v = uint32(int32(int8(c.cachedRead8(regs[op.rs1&15]+op.imm))))
	case uLBU:
		v = uint32(c.cachedRead8(regs[op.rs1&15]+op.imm))
	case uLH:
		v = uint32(int32(int16(c.cachedRead16(regs[op.rs1&15]+op.imm))))
	case uLHU:
		v = uint32(c.cachedRead16(regs[op.rs1&15]+op.imm))
	default: // uLW
		v = c.cachedRead32(regs[op.rs1&15]+op.imm)
	}
	if op.rd != 0 {
		regs[op.rd&15] = v
	}
	addr := regs[x.rs3&15] + x.imm2
	r := Region(x.rs4)
	o := addr & (pageSize - 1)
	switch x.op2 {
	case uSB:
		if r == RegionPacket {
			hi = addr + 1
		}
		c.cachedPage(addr)[o] = uint8(regs[x.rd2&15])
	case uSH:
		if r == RegionPacket {
			hi = addr + 2
		}
		pg := c.cachedPage(addr)
		binary.LittleEndian.PutUint16(pg[o:o+2:o+2], uint16(regs[x.rd2&15]))
	default: // uSW
		if r == RegionPacket {
			hi = addr + 4
		}
		pg := c.cachedPage(addr)
		binary.LittleEndian.PutUint32(pg[o:o+4:o+4], regs[x.rd2&15])
	}
	return hi
}

// branchTo turns a taken static control transfer into the next dispatch
// state: a validated instruction index for in-text targets, or a slow
// pending PC (idx -1) for ReturnAddress and out-of-text targets.
func branchTo(op *microOp, pc uint32) (idx int, pcv uint32) {
	if op.aux >= 0 {
		return int(op.aux), 0
	}
	if op.aux == auxReturn {
		return -1, ReturnAddress
	}
	return -1, pc + op.imm
}

// branchTo2 is branchTo for the second half of a fused pair: the target
// index lives in the head's aux as usual, but the byte offset lives in
// the ext bank's imm2 and bpc is the branch's own PC (the fused head's
// pc + 4).
func branchTo2(aux int32, imm2, bpc uint32) (idx int, pcv uint32) {
	if aux >= 0 {
		return int(aux), 0
	}
	if aux == auxReturn {
		return -1, ReturnAddress
	}
	return -1, bpc + imm2
}

// storeFault builds the interpreter's store fault for a text/unmapped
// region.
func storeFault(region Region, pc, addr uint32) *Fault {
	if region == RegionText {
		return &Fault{Kind: FaultTextWrite, PC: pc, Addr: addr}
	}
	return &Fault{Kind: FaultUnmapped, PC: pc, Addr: addr}
}

// checkData performs the alignment and region checks shared by the
// halfword/word loads: mask is size-1. The classified region is
// returned so the caller can pick the matching page-cache slot.
func (c *CPU) checkData(addr, mask, pc uint32, layout Layout) (Region, *Fault) {
	if addr&mask != 0 {
		return RegionNone, &Fault{Kind: FaultUnaligned, PC: pc, Addr: addr}
	}
	r := layout.Classify(addr)
	if r == RegionNone || r == RegionText {
		return r, &Fault{Kind: FaultUnmapped, PC: pc, Addr: addr}
	}
	return r, nil
}

// runTraced is the traced dispatch loop. It keeps the interpreter's
// per-instruction observable order exactly; the speedup here comes only
// from the eliminated fetch checks and pre-decoded operands, since every
// instruction still owes its tracer events.
func (c *CPU) runTraced(p *Program, maxSteps uint64) (steps uint64, reason StopReason, rerr error) {
	tr := c.Tracer
	bt, blockAware := tr.(BlockTracer)
	regs := &c.Regs
	layout := c.Layout
	ops := p.ops
	text := p.text
	blockOf := p.blockOf
	blockEnd := p.blockEnd
	textBase := p.textBase
	n := uint32(len(ops))
	// A tracer may panic mid-run (the fault injector does); account the
	// executed steps to the CPU lifetime counter even then, exactly as
	// the interpreter's per-instruction increments would have.
	defer func() { c.steps += steps }() //pblint:allow — once per run, not per dispatch

	pcv := c.PC
	idx := -1
outer:
	for {
		if idx < 0 {
			if pcv == ReturnAddress {
				c.PC = pcv
				return steps, StopReturn, nil
			}
			if steps >= maxSteps {
				c.PC = pcv
				return steps, 0, &Fault{Kind: FaultStepLimit, PC: pcv}
			}
			off := pcv - textBase
			if off%isa.WordSize != 0 || off/isa.WordSize >= n {
				c.PC = pcv
				return steps, 0, &Fault{Kind: FaultBadFetch, PC: pcv}
			}
			idx = int(off / isa.WordSize)
		} else if steps >= maxSteps {
			pc := textBase + uint32(idx)*isa.WordSize
			c.PC = pc
			return steps, 0, &Fault{Kind: FaultStepLimit, PC: pc}
		}

		b := blockOf[idx]
		if blockAware {
			bt.EnterBlock(int(b), idx == int(p.leader[b]))
		}
		end := int(blockEnd[b])
		if rem := maxSteps - steps; uint64(end-idx) > rem {
			end = idx + int(rem)
		}
		pc := textBase + uint32(idx)*isa.WordSize
		for j := idx; j < end; j++ {
			op := &ops[j]
			c.PC = pc
			tr.Instr(pc, text[j])
			steps++
			switch op.code {
			case uNOP:
			case uADD:
				regs[op.rd&15] = regs[op.rs1&15] + regs[op.rs2&15]
			case uSUB:
				regs[op.rd&15] = regs[op.rs1&15] - regs[op.rs2&15]
			case uAND:
				regs[op.rd&15] = regs[op.rs1&15] & regs[op.rs2&15]
			case uOR:
				regs[op.rd&15] = regs[op.rs1&15] | regs[op.rs2&15]
			case uXOR:
				regs[op.rd&15] = regs[op.rs1&15] ^ regs[op.rs2&15]
			case uSLL:
				regs[op.rd&15] = regs[op.rs1&15] << (regs[op.rs2&15] & 31)
			case uSRL:
				regs[op.rd&15] = regs[op.rs1&15] >> (regs[op.rs2&15] & 31)
			case uSRA:
				regs[op.rd&15] = uint32(int32(regs[op.rs1&15]) >> (regs[op.rs2&15] & 31))
			case uSLT:
				regs[op.rd&15] = b2u(int32(regs[op.rs1&15]) < int32(regs[op.rs2&15]))
			case uSLTU:
				regs[op.rd&15] = b2u(regs[op.rs1&15] < regs[op.rs2&15])
			case uMUL:
				regs[op.rd&15] = regs[op.rs1&15] * regs[op.rs2&15]
			case uADDI:
				regs[op.rd&15] = regs[op.rs1&15] + op.imm
			case uANDI:
				regs[op.rd&15] = regs[op.rs1&15] & op.imm
			case uORI:
				regs[op.rd&15] = regs[op.rs1&15] | op.imm
			case uXORI:
				regs[op.rd&15] = regs[op.rs1&15] ^ op.imm
			case uSLLI:
				regs[op.rd&15] = regs[op.rs1&15] << (op.imm & 31)
			case uSRLI:
				regs[op.rd&15] = regs[op.rs1&15] >> (op.imm & 31)
			case uSRAI:
				regs[op.rd&15] = uint32(int32(regs[op.rs1&15]) >> (op.imm & 31))
			case uSLTI:
				regs[op.rd&15] = b2u(int32(regs[op.rs1&15]) < int32(op.imm))
			case uSLTIU:
				regs[op.rd&15] = b2u(regs[op.rs1&15] < op.imm)
			case uLI:
				regs[op.rd&15] = op.imm

			case uLB, uLBU, uLH, uLHU, uLW:
				size := loadSize[op.code-uLB]
				addr := regs[op.rs1&15] + op.imm
				if addr&(size-1) != 0 {
					c.PC = pc
					return steps, 0, &Fault{Kind: FaultUnaligned, PC: pc, Addr: addr}
				}
				region := layout.Classify(addr)
				if region == RegionNone || region == RegionText {
					c.PC = pc
					return steps, 0, &Fault{Kind: FaultUnmapped, PC: pc, Addr: addr}
				}
				tr.Mem(pc, addr, uint8(size), false, region)
				var v uint32
				switch op.code {
				case uLB:
					v = uint32(int32(int8(c.cachedRead8(addr))))
				case uLBU:
					v = uint32(c.cachedRead8(addr))
				case uLH:
					v = uint32(int32(int16(c.cachedRead16(addr))))
				case uLHU:
					v = uint32(c.cachedRead16(addr))
				case uLW:
					v = c.cachedRead32(addr)
				}
				if op.rd != 0 {
					regs[op.rd&15] = v
				}

			case uSB, uSH, uSW:
				size := storeSize[op.code-uSB]
				addr := regs[op.rs1&15] + op.imm
				if addr&(size-1) != 0 {
					c.PC = pc
					return steps, 0, &Fault{Kind: FaultUnaligned, PC: pc, Addr: addr}
				}
				region := layout.Classify(addr)
				if region == RegionText || region == RegionNone {
					c.PC = pc
					return steps, 0, storeFault(region, pc, addr)
				}
				if region == RegionPacket {
					// Update the watermark on the CPU before the tracer
					// runs, like the interpreter: a tracer panic must not
					// lose the stores already recorded.
					if end := addr + size; end > c.packetWriteHigh {
						c.packetWriteHigh = end
					}
				}
				tr.Mem(pc, addr, uint8(size), true, region)
				pg := c.cachedPage(addr)
				o := addr & (pageSize - 1)
				switch op.code {
				case uSB:
					pg[o] = uint8(regs[op.rd&15])
				case uSH:
					binary.LittleEndian.PutUint16(pg[o:o+2:o+2], uint16(regs[op.rd&15]))
				case uSW:
					binary.LittleEndian.PutUint32(pg[o:o+4:o+4], regs[op.rd&15])
				}

			case uBEQ:
				if regs[op.rs1&15] == regs[op.rs2&15] {
					idx, pcv = branchTo(op, pc)
					continue outer
				}
			case uBNE:
				if regs[op.rs1&15] != regs[op.rs2&15] {
					idx, pcv = branchTo(op, pc)
					continue outer
				}
			case uBLT:
				if int32(regs[op.rs1&15]) < int32(regs[op.rs2&15]) {
					idx, pcv = branchTo(op, pc)
					continue outer
				}
			case uBGE:
				if int32(regs[op.rs1&15]) >= int32(regs[op.rs2&15]) {
					idx, pcv = branchTo(op, pc)
					continue outer
				}
			case uBLTU:
				if regs[op.rs1&15] < regs[op.rs2&15] {
					idx, pcv = branchTo(op, pc)
					continue outer
				}
			case uBGEU:
				if regs[op.rs1&15] >= regs[op.rs2&15] {
					idx, pcv = branchTo(op, pc)
					continue outer
				}

			case uJAL:
				if op.rd != 0 {
					regs[op.rd&15] = pc + isa.WordSize
				}
				idx, pcv = branchTo(op, pc)
				continue outer
			case uJALR:
				target := (regs[op.rs1&15] + op.imm) &^ 3
				if op.rd != 0 {
					regs[op.rd&15] = pc + isa.WordSize
				}
				idx, pcv = -1, target
				continue outer

			case uHALT:
				c.PC = pc
				return steps, StopHalt, nil
			case uBAD:
				c.PC = pc
				return steps, 0, &Fault{Kind: FaultBadInstr, PC: pc}
			}
			pc += isa.WordSize
		}
		if uint32(end) < n {
			idx = end
		} else {
			idx, pcv = -1, textBase+uint32(end)*isa.WordSize
		}
	}
}

var loadSize = [5]uint32{1, 1, 2, 2, 4} // uLB..uLW
var storeSize = [3]uint32{1, 2, 4}      // uSB..uSW

// Direct-mapped last-page cache --------------------------------------------

// cachedRead8 reads one byte through the last-page cache, direct-mapped
// by the page index's low bits. A page, once allocated, is never
// replaced or freed, so a cached pointer stays valid for the CPU's
// lifetime; pages never seen non-nil are not cached, because a later
// host write could allocate them.
func (c *CPU) cachedRead8(addr uint32) uint8 {
	pidx := addr >> pageBits
	s := (pidx * 2654435761) >> 27 // top 5 bits of a Fibonacci hash
	p := c.pageCache[s]
	if p == nil || c.pageCacheIdx[s] != pidx {
		if p = c.Mem.pages[pidx]; p == nil {
			return 0
		}
		c.pageCache[s], c.pageCacheIdx[s] = p, pidx
	}
	return p[addr&(pageSize-1)]
}

// cachedRead16 reads an aligned little-endian halfword through the cache.
func (c *CPU) cachedRead16(addr uint32) uint16 {
	pidx := addr >> pageBits
	s := (pidx * 2654435761) >> 27 // top 5 bits of a Fibonacci hash
	p := c.pageCache[s]
	if p == nil || c.pageCacheIdx[s] != pidx {
		if p = c.Mem.pages[pidx]; p == nil {
			return 0
		}
		c.pageCache[s], c.pageCacheIdx[s] = p, pidx
	}
	o := addr & (pageSize - 1)
	return binary.LittleEndian.Uint16(p[o : o+2 : o+2])
}

// cachedRead32 reads an aligned little-endian word through the cache.
func (c *CPU) cachedRead32(addr uint32) uint32 {
	pidx := addr >> pageBits
	s := (pidx * 2654435761) >> 27 // top 5 bits of a Fibonacci hash
	p := c.pageCache[s]
	if p == nil || c.pageCacheIdx[s] != pidx {
		if p = c.Mem.pages[pidx]; p == nil {
			return 0
		}
		c.pageCache[s], c.pageCacheIdx[s] = p, pidx
	}
	o := addr & (pageSize - 1)
	return binary.LittleEndian.Uint32(p[o : o+4 : o+4])
}

// cachedPage returns the (allocated) page containing addr through the
// cache, for stores.
func (c *CPU) cachedPage(addr uint32) *page {
	pidx := addr >> pageBits
	s := (pidx * 2654435761) >> 27 // top 5 bits of a Fibonacci hash
	if p := c.pageCache[s]; p != nil && c.pageCacheIdx[s] == pidx {
		return p
	}
	p := c.Mem.pageFor(addr)
	c.pageCache[s], c.pageCacheIdx[s] = p, pidx
	return p
}
