// Block-threaded execution engine.
//
// The reference interpreter (CPU.Run) pays a fixed per-instruction tax:
// a return-address check, a step-budget check, a fetch bounds/alignment
// check, a tracer nil-check, and a 40-way opcode switch over operands
// that are re-read from the decoded Instruction on every execution. For
// the per-packet hot path — millions of simulated instructions per trace
// — that tax dominates the run time.
//
// Translate compiles the decoded text segment once, at load time, into a
// flat array of pre-decoded micro-ops grouped into the basic blocks of
// an analysis.BlockMap. Within a block the engine executes straight-line
// with no fetch checks at all: the entry PC is validated once at the
// block boundary, the step budget is charged per block (falling back to
// a truncated body only when the budget would expire mid-block), and
// every operand — register indexes, sign- or zero-extended immediates,
// the pre-shifted LUI constant, branch and jump targets — was resolved
// during translation. Static branch/JAL targets dispatch directly to the
// target instruction index; only the indirect JALR pays a full PC
// validation, exactly like the interpreter's fetch path.
//
// The engine keeps two completely separate dispatch loops: the untraced
// loop (Tracer == nil) carries zero tracing branches, while the traced
// loop reproduces the interpreter's observable event order bit for bit —
// Instr before the step is counted, Mem between the fault checks and the
// access, c.PC current at every tracer call so a panicking tracer (the
// fault injector does this on purpose) is recovered at the right PC.
//
// The interpreter remains the oracle: for any program and input the two
// engines produce identical register files, memory images, step counts,
// stop reasons and fault kind/PC/Addr. Differential tests (threaded_test,
// core's engine-diff harness, FuzzEngineDiff) pin that contract.
package vm

import (
	"encoding/binary"

	"repro/internal/analysis"
	"repro/internal/isa"
)

// Micro-op codes. ALU ops whose destination is the zero register are
// translated to uNOP (architecturally they have no effect); loads keep
// their full fault-check/trace behavior and only the write-back is
// discarded, matching the interpreter.
const (
	uNOP uint8 = iota
	uADD
	uSUB
	uAND
	uOR
	uXOR
	uSLL
	uSRL
	uSRA
	uSLT
	uSLTU
	uMUL
	uADDI
	uANDI
	uORI
	uXORI
	uSLLI
	uSRLI
	uSRAI
	uSLTI
	uSLTIU
	uLI // rd <- imm (LUI with the <<12 applied at translation time)
	uLB
	uLBU
	uLH
	uLHU
	uLW
	uSB
	uSH
	uSW
	uBEQ
	uBNE
	uBLT
	uBGE
	uBLTU
	uBGEU
	uJAL
	uJALR
	uHALT
	uBAD // undecodable instruction: FaultBadInstr when executed
)

// Special aux values for statically resolved control-transfer targets.
const (
	// auxFault marks a static target outside the text segment; taking the
	// transfer raises FaultBadFetch at the target PC (recomputed from the
	// imm byte offset), after the budget check, like the interpreter.
	auxFault int32 = -1
	// auxReturn marks a static target equal to ReturnAddress.
	auxReturn int32 = -2
)

// microOp is one pre-decoded instruction. Register fields are masked to
// the architectural range at translation time (and re-masked with &15 at
// the use sites, which is what actually lets the compiler drop the
// register-file bounds checks). imm holds the ready-to-use
// immediate: sign/zero-extended for ALU and memory ops, the full shifted
// constant for uLI, and for branches and uJAL the byte offset from the
// instruction's own PC to the target (4 + imm*4), which the fault path
// uses to recompute an out-of-text target address.
type microOp struct {
	code uint8
	rd   uint8
	rs1  uint8
	rs2  uint8
	imm  uint32
	aux  int32 // branch/JAL target instruction index, or auxFault/auxReturn
}

// Program is a translated text segment, ready for block-threaded
// execution on any CPU whose text base matches the one it was translated
// for. A Program is immutable after Translate and safe to share between
// cores (each CPU carries its own mutable state).
type Program struct {
	ops      []microOp
	text     []isa.Instruction // original instructions, for tracer events
	textBase uint32
	blockOf  []int32 // instruction index -> block id
	blockEnd []int32 // block id -> exclusive end instruction index
	leader   []int32 // block id -> leader instruction index
	endAt    []int32 // instruction index -> exclusive end of its block
}

// NumBlocks returns the number of translated basic blocks.
func (p *Program) NumBlocks() int { return len(p.blockEnd) }

// Translate compiles a decoded text segment into a block-threaded
// Program using the given basic-block decomposition, which must have
// been built from the same text and textBase.
func Translate(text []isa.Instruction, textBase uint32, blocks *analysis.BlockMap) *Program {
	n := len(text)
	p := &Program{
		ops:      make([]microOp, n),
		text:     text,
		textBase: textBase,
		blockOf:  make([]int32, n),
		blockEnd: make([]int32, blocks.NumBlocks()),
		leader:   make([]int32, blocks.NumBlocks()),
		endAt:    make([]int32, n),
	}
	for b := 0; b < blocks.NumBlocks(); b++ {
		p.blockEnd[b] = int32(blocks.EndIndex(b))
		p.leader[b] = int32(blocks.LeaderIndex(b))
	}
	for i, in := range text {
		p.blockOf[i] = int32(blocks.BlockOfIndex(i))
		p.endAt[i] = p.blockEnd[p.blockOf[i]]
		p.ops[i] = translateOne(i, in, textBase, n)
	}
	return p
}

// aluCode maps the register-register and register-immediate ALU opcodes
// to their micro-op codes (same dispatch, pre-masked operands).
var aluCode = map[isa.Opcode]uint8{
	isa.ADD: uADD, isa.SUB: uSUB, isa.AND: uAND, isa.OR: uOR, isa.XOR: uXOR,
	isa.SLL: uSLL, isa.SRL: uSRL, isa.SRA: uSRA, isa.SLT: uSLT, isa.SLTU: uSLTU,
	isa.MUL:  uMUL,
	isa.ADDI: uADDI, isa.ANDI: uANDI, isa.ORI: uORI, isa.XORI: uXORI,
	isa.SLLI: uSLLI, isa.SRLI: uSRLI, isa.SRAI: uSRAI, isa.SLTI: uSLTI,
	isa.SLTIU: uSLTIU,
}

var memCode = map[isa.Opcode]uint8{
	isa.LB: uLB, isa.LBU: uLBU, isa.LH: uLH, isa.LHU: uLHU, isa.LW: uLW,
	isa.SB: uSB, isa.SH: uSH, isa.SW: uSW,
}

var branchCode = map[isa.Opcode]uint8{
	isa.BEQ: uBEQ, isa.BNE: uBNE, isa.BLT: uBLT,
	isa.BGE: uBGE, isa.BLTU: uBLTU, isa.BGEU: uBGEU,
}

func translateOne(i int, in isa.Instruction, textBase uint32, n int) microOp {
	op := microOp{
		rd:  uint8(in.Rd) & 15,
		rs1: uint8(in.Rs1) & 15,
		rs2: uint8(in.Rs2) & 15,
		imm: uint32(in.Imm),
	}
	pc := textBase + uint32(i)*isa.WordSize
	switch {
	case aluCode[in.Op] != 0:
		if in.Rd == isa.Zero {
			return microOp{code: uNOP}
		}
		op.code = aluCode[in.Op]
	case in.Op == isa.LUI:
		if in.Rd == isa.Zero {
			return microOp{code: uNOP}
		}
		op.code = uLI
		op.imm = uint32(in.Imm) << 12
	case memCode[in.Op] != 0:
		op.code = memCode[in.Op]
	case branchCode[in.Op] != 0:
		op.code = branchCode[in.Op]
		op.imm = isa.WordSize + uint32(in.Imm)*isa.WordSize // byte offset from pc
		op.aux = staticTarget(pc+op.imm, textBase, n)
	case in.Op == isa.JAL:
		op.code = uJAL
		op.imm = isa.WordSize + uint32(in.Imm)*isa.WordSize
		op.aux = staticTarget(pc+op.imm, textBase, n)
	case in.Op == isa.JALR:
		op.code = uJALR
	case in.Op == isa.HALT:
		op.code = uHALT
	default:
		op.code = uBAD
	}
	return op
}

// staticTarget resolves a translation-time-known control transfer target
// to an instruction index, using the interpreter's exact uint32 wrapping
// semantics for the bounds test.
func staticTarget(target, textBase uint32, n int) int32 {
	if target == ReturnAddress {
		return auxReturn
	}
	off := target - textBase
	if off%isa.WordSize == 0 && off/isa.WordSize < uint32(n) {
		return int32(off / isa.WordSize)
	}
	return auxFault
}

// BlockTracer is an optional Tracer extension: an engine that already
// knows the basic-block structure (the block-threaded engine) reports
// block entries directly, so a block-aware tracer (the statistics
// collector) does not have to re-derive the block of every instruction.
// EnterBlock is called once per dynamic block entry, before the entry
// instruction's Instr event; leader reports whether execution entered at
// the block's first instruction (false only for indirect jumps into the
// middle of a block).
type BlockTracer interface {
	Tracer
	EnterBlock(b int, leader bool)
}

// EnterBlock implements BlockTracer by fanning out to the members that
// are themselves block-aware.
func (m MultiTracer) EnterBlock(b int, leader bool) {
	for _, t := range m {
		if bt, ok := t.(BlockTracer); ok {
			bt.EnterBlock(b, leader)
		}
	}
}

// RunProgram executes the translated program starting at c.PC until the
// application halts, returns to ReturnAddress, faults, or exceeds
// maxSteps — the block-threaded equivalent of Run, with the identical
// observable contract: same final registers and memory, same step count,
// same stop reason, and the same fault kind, PC and address on every
// failure. p must have been translated from the text segment and base
// this CPU was created with.
//
// With a nil Tracer the untraced dispatch loop runs: no tracing branches,
// per-block step accounting, and c.PC/c.packetWriteHigh updated only at
// run exit. With a Tracer attached the traced loop reproduces the
// interpreter's per-instruction event order exactly (Instr before the
// step is counted, Mem between the fault checks and the access, c.PC
// current at every hook) so tracer-driven fault injection behaves
// identically under both engines.
func (c *CPU) RunProgram(p *Program, maxSteps uint64) (steps uint64, reason StopReason, err error) {
	if c.Tracer != nil {
		return c.runTraced(p, maxSteps)
	}
	return c.runFast(p, maxSteps)
}

// runFast is the untraced dispatch loop.
func (c *CPU) runFast(p *Program, maxSteps uint64) (steps uint64, reason StopReason, rerr error) {
	regs := &c.Regs
	layout := c.Layout
	ops := p.ops
	endAt := p.endAt
	textBase := p.textBase
	n := uint32(len(ops))
	pktHigh := c.packetWriteHigh
	defer func() {
		c.steps += steps
		if pktHigh > c.packetWriteHigh {
			c.packetWriteHigh = pktHigh
		}
	}()

	pcv := c.PC // pending control-transfer target, when idx < 0
	idx := -1   // entry instruction index, when >= 0 (already validated in-text)
outer:
	for {
		if idx < 0 {
			// Slow entry: arbitrary PC (run start, JALR, out-of-text
			// static targets, fall-through past the end). The check order
			// matches the interpreter: return address, budget, fetch.
			if pcv == ReturnAddress {
				c.PC = pcv
				return steps, StopReturn, nil
			}
			if steps >= maxSteps {
				c.PC = pcv
				return steps, 0, &Fault{Kind: FaultStepLimit, PC: pcv}
			}
			off := pcv - textBase
			if off%isa.WordSize != 0 || off/isa.WordSize >= n {
				c.PC = pcv
				return steps, 0, &Fault{Kind: FaultBadFetch, PC: pcv}
			}
			idx = int(off / isa.WordSize)
		} else if steps >= maxSteps {
			pc := textBase + uint32(idx)*isa.WordSize
			c.PC = pc
			return steps, 0, &Fault{Kind: FaultStepLimit, PC: pc}
		}

		end := int(endAt[idx])
		if rem := maxSteps - steps; uint64(end-idx) > rem {
			// The budget expires mid-block: execute only the affordable
			// prefix; the re-entry check above raises the step-limit
			// fault at the exact instruction the interpreter would.
			end = idx + int(rem)
		}
		if end > len(ops) {
			// Never taken (endAt values are block bounds); it teaches the
			// compiler end <= len(ops) so ops[j] below needs no bounds
			// check.
			end = len(ops)
		}
		pc := textBase + uint32(idx)*isa.WordSize
		for j := idx; j < end; j++ {
			op := &ops[j]
			switch op.code {
			case uNOP:
			case uADD:
				regs[op.rd&15] = regs[op.rs1&15] + regs[op.rs2&15]
			case uSUB:
				regs[op.rd&15] = regs[op.rs1&15] - regs[op.rs2&15]
			case uAND:
				regs[op.rd&15] = regs[op.rs1&15] & regs[op.rs2&15]
			case uOR:
				regs[op.rd&15] = regs[op.rs1&15] | regs[op.rs2&15]
			case uXOR:
				regs[op.rd&15] = regs[op.rs1&15] ^ regs[op.rs2&15]
			case uSLL:
				regs[op.rd&15] = regs[op.rs1&15] << (regs[op.rs2&15] & 31)
			case uSRL:
				regs[op.rd&15] = regs[op.rs1&15] >> (regs[op.rs2&15] & 31)
			case uSRA:
				regs[op.rd&15] = uint32(int32(regs[op.rs1&15]) >> (regs[op.rs2&15] & 31))
			case uSLT:
				regs[op.rd&15] = b2u(int32(regs[op.rs1&15]) < int32(regs[op.rs2&15]))
			case uSLTU:
				regs[op.rd&15] = b2u(regs[op.rs1&15] < regs[op.rs2&15])
			case uMUL:
				regs[op.rd&15] = regs[op.rs1&15] * regs[op.rs2&15]
			case uADDI:
				regs[op.rd&15] = regs[op.rs1&15] + op.imm
			case uANDI:
				regs[op.rd&15] = regs[op.rs1&15] & op.imm
			case uORI:
				regs[op.rd&15] = regs[op.rs1&15] | op.imm
			case uXORI:
				regs[op.rd&15] = regs[op.rs1&15] ^ op.imm
			case uSLLI:
				regs[op.rd&15] = regs[op.rs1&15] << (op.imm & 31)
			case uSRLI:
				regs[op.rd&15] = regs[op.rs1&15] >> (op.imm & 31)
			case uSRAI:
				regs[op.rd&15] = uint32(int32(regs[op.rs1&15]) >> (op.imm & 31))
			case uSLTI:
				regs[op.rd&15] = b2u(int32(regs[op.rs1&15]) < int32(op.imm))
			case uSLTIU:
				regs[op.rd&15] = b2u(regs[op.rs1&15] < op.imm)
			case uLI:
				regs[op.rd&15] = op.imm

			case uLB:
				addr := regs[op.rs1&15] + op.imm
				r := layout.Classify(addr)
				if r == RegionNone || r == RegionText {
					steps += uint64(j-idx) + 1
					c.PC = pc
					return steps, 0, &Fault{Kind: FaultUnmapped, PC: pc, Addr: addr}
				}
				if op.rd != 0 {
					regs[op.rd&15] = uint32(int32(int8(c.cachedRead8(addr, r))))
				}
			case uLBU:
				addr := regs[op.rs1&15] + op.imm
				r := layout.Classify(addr)
				if r == RegionNone || r == RegionText {
					steps += uint64(j-idx) + 1
					c.PC = pc
					return steps, 0, &Fault{Kind: FaultUnmapped, PC: pc, Addr: addr}
				}
				if op.rd != 0 {
					regs[op.rd&15] = uint32(c.cachedRead8(addr, r))
				}
			case uLH:
				addr := regs[op.rs1&15] + op.imm
				r, f := c.checkData(addr, 1, pc, layout)
				if f != nil {
					steps += uint64(j-idx) + 1
					c.PC = pc
					return steps, 0, f
				}
				if op.rd != 0 {
					regs[op.rd&15] = uint32(int32(int16(c.cachedRead16(addr, r))))
				}
			case uLHU:
				addr := regs[op.rs1&15] + op.imm
				r, f := c.checkData(addr, 1, pc, layout)
				if f != nil {
					steps += uint64(j-idx) + 1
					c.PC = pc
					return steps, 0, f
				}
				if op.rd != 0 {
					regs[op.rd&15] = uint32(c.cachedRead16(addr, r))
				}
			case uLW:
				addr := regs[op.rs1&15] + op.imm
				r, f := c.checkData(addr, 3, pc, layout)
				if f != nil {
					steps += uint64(j-idx) + 1
					c.PC = pc
					return steps, 0, f
				}
				if op.rd != 0 {
					regs[op.rd&15] = c.cachedRead32(addr, r)
				}

			case uSB:
				addr := regs[op.rs1&15] + op.imm
				region := layout.Classify(addr)
				if region == RegionText || region == RegionNone {
					steps += uint64(j-idx) + 1
					c.PC = pc
					return steps, 0, storeFault(region, pc, addr)
				}
				if region == RegionPacket && addr+1 > pktHigh {
					pktHigh = addr + 1
				}
				pg := c.cachedPage(addr, region)
				pg[addr&(pageSize-1)] = uint8(regs[op.rd&15])
			case uSH:
				addr := regs[op.rs1&15] + op.imm
				if addr&1 != 0 {
					steps += uint64(j-idx) + 1
					c.PC = pc
					return steps, 0, &Fault{Kind: FaultUnaligned, PC: pc, Addr: addr}
				}
				region := layout.Classify(addr)
				if region == RegionText || region == RegionNone {
					steps += uint64(j-idx) + 1
					c.PC = pc
					return steps, 0, storeFault(region, pc, addr)
				}
				if region == RegionPacket && addr+2 > pktHigh {
					pktHigh = addr + 2
				}
				pg := c.cachedPage(addr, region)
				o := addr & (pageSize - 1)
				binary.LittleEndian.PutUint16(pg[o:o+2:o+2], uint16(regs[op.rd&15]))
			case uSW:
				addr := regs[op.rs1&15] + op.imm
				if addr&3 != 0 {
					steps += uint64(j-idx) + 1
					c.PC = pc
					return steps, 0, &Fault{Kind: FaultUnaligned, PC: pc, Addr: addr}
				}
				region := layout.Classify(addr)
				if region == RegionText || region == RegionNone {
					steps += uint64(j-idx) + 1
					c.PC = pc
					return steps, 0, storeFault(region, pc, addr)
				}
				if region == RegionPacket && addr+4 > pktHigh {
					pktHigh = addr + 4
				}
				pg := c.cachedPage(addr, region)
				o := addr & (pageSize - 1)
				binary.LittleEndian.PutUint32(pg[o:o+4:o+4], regs[op.rd&15])

			case uBEQ:
				if regs[op.rs1&15] == regs[op.rs2&15] {
					steps += uint64(j-idx) + 1
					idx, pcv = branchTo(op, pc)
					continue outer
				}
			case uBNE:
				if regs[op.rs1&15] != regs[op.rs2&15] {
					steps += uint64(j-idx) + 1
					idx, pcv = branchTo(op, pc)
					continue outer
				}
			case uBLT:
				if int32(regs[op.rs1&15]) < int32(regs[op.rs2&15]) {
					steps += uint64(j-idx) + 1
					idx, pcv = branchTo(op, pc)
					continue outer
				}
			case uBGE:
				if int32(regs[op.rs1&15]) >= int32(regs[op.rs2&15]) {
					steps += uint64(j-idx) + 1
					idx, pcv = branchTo(op, pc)
					continue outer
				}
			case uBLTU:
				if regs[op.rs1&15] < regs[op.rs2&15] {
					steps += uint64(j-idx) + 1
					idx, pcv = branchTo(op, pc)
					continue outer
				}
			case uBGEU:
				if regs[op.rs1&15] >= regs[op.rs2&15] {
					steps += uint64(j-idx) + 1
					idx, pcv = branchTo(op, pc)
					continue outer
				}

			case uJAL:
				if op.rd != 0 {
					regs[op.rd&15] = pc + isa.WordSize
				}
				steps += uint64(j-idx) + 1
				idx, pcv = branchTo(op, pc)
				continue outer
			case uJALR:
				target := (regs[op.rs1&15] + op.imm) &^ 3
				if op.rd != 0 {
					regs[op.rd&15] = pc + isa.WordSize
				}
				steps += uint64(j-idx) + 1
				idx, pcv = -1, target
				continue outer

			case uHALT:
				steps += uint64(j-idx) + 1
				c.PC = pc
				return steps, StopHalt, nil
			case uBAD:
				steps += uint64(j-idx) + 1
				c.PC = pc
				return steps, 0, &Fault{Kind: FaultBadInstr, PC: pc}
			}
			pc += isa.WordSize
		}
		// Block body exhausted without a control transfer: either the
		// budget truncated it, the block was split by a following leader,
		// or execution ran past the last instruction. The re-entry checks
		// sort the three cases out (step limit / next block / bad fetch).
		steps += uint64(end - idx)
		if uint32(end) < n {
			idx = end
		} else {
			idx, pcv = -1, textBase+uint32(end)*isa.WordSize
		}
	}
}

// branchTo turns a taken static control transfer into the next dispatch
// state: a validated instruction index for in-text targets, or a slow
// pending PC (idx -1) for ReturnAddress and out-of-text targets.
func branchTo(op *microOp, pc uint32) (idx int, pcv uint32) {
	if op.aux >= 0 {
		return int(op.aux), 0
	}
	if op.aux == auxReturn {
		return -1, ReturnAddress
	}
	return -1, pc + op.imm
}

// storeFault builds the interpreter's store fault for a text/unmapped
// region.
func storeFault(region Region, pc, addr uint32) *Fault {
	if region == RegionText {
		return &Fault{Kind: FaultTextWrite, PC: pc, Addr: addr}
	}
	return &Fault{Kind: FaultUnmapped, PC: pc, Addr: addr}
}

// checkData performs the alignment and region checks shared by the
// halfword/word loads: mask is size-1. The classified region is
// returned so the caller can pick the matching page-cache slot.
func (c *CPU) checkData(addr, mask, pc uint32, layout Layout) (Region, *Fault) {
	if addr&mask != 0 {
		return RegionNone, &Fault{Kind: FaultUnaligned, PC: pc, Addr: addr}
	}
	r := layout.Classify(addr)
	if r == RegionNone || r == RegionText {
		return r, &Fault{Kind: FaultUnmapped, PC: pc, Addr: addr}
	}
	return r, nil
}

// runTraced is the traced dispatch loop. It keeps the interpreter's
// per-instruction observable order exactly; the speedup here comes only
// from the eliminated fetch checks and pre-decoded operands, since every
// instruction still owes its tracer events.
func (c *CPU) runTraced(p *Program, maxSteps uint64) (steps uint64, reason StopReason, rerr error) {
	tr := c.Tracer
	bt, blockAware := tr.(BlockTracer)
	regs := &c.Regs
	layout := c.Layout
	ops := p.ops
	text := p.text
	blockOf := p.blockOf
	blockEnd := p.blockEnd
	textBase := p.textBase
	n := uint32(len(ops))
	// A tracer may panic mid-run (the fault injector does); account the
	// executed steps to the CPU lifetime counter even then, exactly as
	// the interpreter's per-instruction increments would have.
	defer func() { c.steps += steps }()

	pcv := c.PC
	idx := -1
outer:
	for {
		if idx < 0 {
			if pcv == ReturnAddress {
				c.PC = pcv
				return steps, StopReturn, nil
			}
			if steps >= maxSteps {
				c.PC = pcv
				return steps, 0, &Fault{Kind: FaultStepLimit, PC: pcv}
			}
			off := pcv - textBase
			if off%isa.WordSize != 0 || off/isa.WordSize >= n {
				c.PC = pcv
				return steps, 0, &Fault{Kind: FaultBadFetch, PC: pcv}
			}
			idx = int(off / isa.WordSize)
		} else if steps >= maxSteps {
			pc := textBase + uint32(idx)*isa.WordSize
			c.PC = pc
			return steps, 0, &Fault{Kind: FaultStepLimit, PC: pc}
		}

		b := blockOf[idx]
		if blockAware {
			bt.EnterBlock(int(b), idx == int(p.leader[b]))
		}
		end := int(blockEnd[b])
		if rem := maxSteps - steps; uint64(end-idx) > rem {
			end = idx + int(rem)
		}
		pc := textBase + uint32(idx)*isa.WordSize
		for j := idx; j < end; j++ {
			op := &ops[j]
			c.PC = pc
			tr.Instr(pc, text[j])
			steps++
			switch op.code {
			case uNOP:
			case uADD:
				regs[op.rd&15] = regs[op.rs1&15] + regs[op.rs2&15]
			case uSUB:
				regs[op.rd&15] = regs[op.rs1&15] - regs[op.rs2&15]
			case uAND:
				regs[op.rd&15] = regs[op.rs1&15] & regs[op.rs2&15]
			case uOR:
				regs[op.rd&15] = regs[op.rs1&15] | regs[op.rs2&15]
			case uXOR:
				regs[op.rd&15] = regs[op.rs1&15] ^ regs[op.rs2&15]
			case uSLL:
				regs[op.rd&15] = regs[op.rs1&15] << (regs[op.rs2&15] & 31)
			case uSRL:
				regs[op.rd&15] = regs[op.rs1&15] >> (regs[op.rs2&15] & 31)
			case uSRA:
				regs[op.rd&15] = uint32(int32(regs[op.rs1&15]) >> (regs[op.rs2&15] & 31))
			case uSLT:
				regs[op.rd&15] = b2u(int32(regs[op.rs1&15]) < int32(regs[op.rs2&15]))
			case uSLTU:
				regs[op.rd&15] = b2u(regs[op.rs1&15] < regs[op.rs2&15])
			case uMUL:
				regs[op.rd&15] = regs[op.rs1&15] * regs[op.rs2&15]
			case uADDI:
				regs[op.rd&15] = regs[op.rs1&15] + op.imm
			case uANDI:
				regs[op.rd&15] = regs[op.rs1&15] & op.imm
			case uORI:
				regs[op.rd&15] = regs[op.rs1&15] | op.imm
			case uXORI:
				regs[op.rd&15] = regs[op.rs1&15] ^ op.imm
			case uSLLI:
				regs[op.rd&15] = regs[op.rs1&15] << (op.imm & 31)
			case uSRLI:
				regs[op.rd&15] = regs[op.rs1&15] >> (op.imm & 31)
			case uSRAI:
				regs[op.rd&15] = uint32(int32(regs[op.rs1&15]) >> (op.imm & 31))
			case uSLTI:
				regs[op.rd&15] = b2u(int32(regs[op.rs1&15]) < int32(op.imm))
			case uSLTIU:
				regs[op.rd&15] = b2u(regs[op.rs1&15] < op.imm)
			case uLI:
				regs[op.rd&15] = op.imm

			case uLB, uLBU, uLH, uLHU, uLW:
				size := loadSize[op.code-uLB]
				addr := regs[op.rs1&15] + op.imm
				if addr&(size-1) != 0 {
					c.PC = pc
					return steps, 0, &Fault{Kind: FaultUnaligned, PC: pc, Addr: addr}
				}
				region := layout.Classify(addr)
				if region == RegionNone || region == RegionText {
					c.PC = pc
					return steps, 0, &Fault{Kind: FaultUnmapped, PC: pc, Addr: addr}
				}
				tr.Mem(pc, addr, uint8(size), false, region)
				var v uint32
				switch op.code {
				case uLB:
					v = uint32(int32(int8(c.cachedRead8(addr, region))))
				case uLBU:
					v = uint32(c.cachedRead8(addr, region))
				case uLH:
					v = uint32(int32(int16(c.cachedRead16(addr, region))))
				case uLHU:
					v = uint32(c.cachedRead16(addr, region))
				case uLW:
					v = c.cachedRead32(addr, region)
				}
				if op.rd != 0 {
					regs[op.rd&15] = v
				}

			case uSB, uSH, uSW:
				size := storeSize[op.code-uSB]
				addr := regs[op.rs1&15] + op.imm
				if addr&(size-1) != 0 {
					c.PC = pc
					return steps, 0, &Fault{Kind: FaultUnaligned, PC: pc, Addr: addr}
				}
				region := layout.Classify(addr)
				if region == RegionText || region == RegionNone {
					c.PC = pc
					return steps, 0, storeFault(region, pc, addr)
				}
				if region == RegionPacket {
					// Update the watermark on the CPU before the tracer
					// runs, like the interpreter: a tracer panic must not
					// lose the stores already recorded.
					if end := addr + size; end > c.packetWriteHigh {
						c.packetWriteHigh = end
					}
				}
				tr.Mem(pc, addr, uint8(size), true, region)
				pg := c.cachedPage(addr, region)
				o := addr & (pageSize - 1)
				switch op.code {
				case uSB:
					pg[o] = uint8(regs[op.rd&15])
				case uSH:
					binary.LittleEndian.PutUint16(pg[o:o+2:o+2], uint16(regs[op.rd&15]))
				case uSW:
					binary.LittleEndian.PutUint32(pg[o:o+4:o+4], regs[op.rd&15])
				}

			case uBEQ:
				if regs[op.rs1&15] == regs[op.rs2&15] {
					idx, pcv = branchTo(op, pc)
					continue outer
				}
			case uBNE:
				if regs[op.rs1&15] != regs[op.rs2&15] {
					idx, pcv = branchTo(op, pc)
					continue outer
				}
			case uBLT:
				if int32(regs[op.rs1&15]) < int32(regs[op.rs2&15]) {
					idx, pcv = branchTo(op, pc)
					continue outer
				}
			case uBGE:
				if int32(regs[op.rs1&15]) >= int32(regs[op.rs2&15]) {
					idx, pcv = branchTo(op, pc)
					continue outer
				}
			case uBLTU:
				if regs[op.rs1&15] < regs[op.rs2&15] {
					idx, pcv = branchTo(op, pc)
					continue outer
				}
			case uBGEU:
				if regs[op.rs1&15] >= regs[op.rs2&15] {
					idx, pcv = branchTo(op, pc)
					continue outer
				}

			case uJAL:
				if op.rd != 0 {
					regs[op.rd&15] = pc + isa.WordSize
				}
				idx, pcv = branchTo(op, pc)
				continue outer
			case uJALR:
				target := (regs[op.rs1&15] + op.imm) &^ 3
				if op.rd != 0 {
					regs[op.rd&15] = pc + isa.WordSize
				}
				idx, pcv = -1, target
				continue outer

			case uHALT:
				c.PC = pc
				return steps, StopHalt, nil
			case uBAD:
				c.PC = pc
				return steps, 0, &Fault{Kind: FaultBadInstr, PC: pc}
			}
			pc += isa.WordSize
		}
		if uint32(end) < n {
			idx = end
		} else {
			idx, pcv = -1, textBase+uint32(end)*isa.WordSize
		}
	}
}

var loadSize = [5]uint32{1, 1, 2, 2, 4} // uLB..uLW
var storeSize = [3]uint32{1, 2, 4}      // uSB..uSW

// Per-region last-page cache ----------------------------------------------

// cachedRead8 reads one byte through the region's last-page cache slot.
// A page, once allocated, is never replaced or freed, so a cached
// pointer stays valid for the CPU's lifetime; pages never seen non-nil
// are not cached, because a later host write could allocate them.
func (c *CPU) cachedRead8(addr uint32, region Region) uint8 {
	pidx := addr >> pageBits
	p := c.pageCache[region]
	if p == nil || c.pageCacheIdx[region] != pidx {
		if p = c.Mem.pages[pidx]; p == nil {
			return 0
		}
		c.pageCache[region], c.pageCacheIdx[region] = p, pidx
	}
	return p[addr&(pageSize-1)]
}

// cachedRead16 reads an aligned little-endian halfword through the cache.
func (c *CPU) cachedRead16(addr uint32, region Region) uint16 {
	pidx := addr >> pageBits
	p := c.pageCache[region]
	if p == nil || c.pageCacheIdx[region] != pidx {
		if p = c.Mem.pages[pidx]; p == nil {
			return 0
		}
		c.pageCache[region], c.pageCacheIdx[region] = p, pidx
	}
	o := addr & (pageSize - 1)
	return binary.LittleEndian.Uint16(p[o : o+2 : o+2])
}

// cachedRead32 reads an aligned little-endian word through the cache.
func (c *CPU) cachedRead32(addr uint32, region Region) uint32 {
	pidx := addr >> pageBits
	p := c.pageCache[region]
	if p == nil || c.pageCacheIdx[region] != pidx {
		if p = c.Mem.pages[pidx]; p == nil {
			return 0
		}
		c.pageCache[region], c.pageCacheIdx[region] = p, pidx
	}
	o := addr & (pageSize - 1)
	return binary.LittleEndian.Uint32(p[o : o+4 : o+4])
}

// cachedPage returns the (allocated) page containing addr through the
// region's cache slot, for stores.
func (c *CPU) cachedPage(addr uint32, region Region) *page {
	pidx := addr >> pageBits
	if p := c.pageCache[region]; p != nil && c.pageCacheIdx[region] == pidx {
		return p
	}
	p := c.Mem.pageFor(addr)
	c.pageCache[region], c.pageCacheIdx[region] = p, pidx
	return p
}
