package vm

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/analysis"
	"repro/internal/isa"
)

// testLayout is the standard layout the engine differential tests run
// under, mirroring the fuzz harness.
func testLayout(textBase uint32, n int) Layout {
	return Layout{
		TextBase:   textBase,
		TextEnd:    textBase + uint32(n)*isa.WordSize,
		PacketBase: 0x20000000,
		PacketEnd:  0x20010000,
		DataBase:   0x10000000,
		DataEnd:    0x10100000,
		StackBase:  0x7FFF0000,
		StackEnd:   0x80000000,
	}
}

// engineResult captures everything observable about one run, for
// engine-equivalence comparison.
type engineResult struct {
	Regs   [isa.NumRegs]uint32
	PC     uint32
	Steps  uint64
	Reason StopReason
	Fault  *Fault
	High   uint32 // packet-write watermark
	mem    *Memory
}

// runEngine executes text on a fresh CPU with the given engine
// (threaded or interpreter) and optional tracer factory.
func runEngine(t *testing.T, text []isa.Instruction, textBase uint32, maxSteps uint64,
	threaded bool, tracer Tracer, seedRegs func(*CPU)) engineResult {
	t.Helper()
	cpu := New(text, textBase, NewMemory())
	cpu.Layout = testLayout(textBase, len(text))
	cpu.Tracer = tracer
	if seedRegs != nil {
		seedRegs(cpu)
	}
	cpu.PC = textBase
	var (
		steps  uint64
		reason StopReason
		err    error
	)
	if threaded {
		// Nil facts: superinstruction fusion is on (it needs no proofs)
		// but nothing is elided or unchecked, so the differential tests
		// exercise the fused dispatch loop against the interpreter.
		p := TranslateWithFacts(text, textBase, analysis.NewBlockMap(text, textBase), nil)
		steps, reason, err = cpu.RunProgram(p, maxSteps)
	} else {
		steps, reason, err = cpu.Run(maxSteps)
	}
	res := engineResult{
		Regs: cpu.Regs, PC: cpu.PC, Steps: steps, Reason: reason,
		High: cpu.PacketWriteHigh(), mem: cpu.Mem,
	}
	if err != nil {
		var f *Fault
		if !errors.As(err, &f) {
			t.Fatalf("non-Fault error: %v", err)
		}
		res.Fault = f
	}
	if cpu.Regs[isa.Zero] != 0 {
		t.Fatalf("zero register clobbered: %#x", cpu.Regs[isa.Zero])
	}
	return res
}

// requireSameResult fails unless the two runs are bit-identical:
// registers, final PC, step count, stop reason, fault kind/PC/Addr,
// packet watermark, and the full memory image.
func requireSameResult(t *testing.T, want, got engineResult, label string) {
	t.Helper()
	if want.Regs != got.Regs {
		t.Errorf("%s: register files differ:\ninterp:   %#x\nthreaded: %#x", label, want.Regs, got.Regs)
	}
	if want.PC != got.PC {
		t.Errorf("%s: final PC differs: interp %#x, threaded %#x", label, want.PC, got.PC)
	}
	if want.Steps != got.Steps {
		t.Errorf("%s: steps differ: interp %d, threaded %d", label, want.Steps, got.Steps)
	}
	if want.Reason != got.Reason {
		t.Errorf("%s: stop reason differs: interp %v, threaded %v", label, want.Reason, got.Reason)
	}
	if want.High != got.High {
		t.Errorf("%s: packet watermark differs: interp %#x, threaded %#x", label, want.High, got.High)
	}
	switch {
	case (want.Fault == nil) != (got.Fault == nil):
		t.Errorf("%s: fault presence differs: interp %v, threaded %v", label, want.Fault, got.Fault)
	case want.Fault != nil && *want.Fault != *got.Fault:
		t.Errorf("%s: faults differ: interp %+v, threaded %+v", label, *want.Fault, *got.Fault)
	}
	if !want.mem.Equal(got.mem) {
		t.Errorf("%s: final memory images differ", label)
	}
}

// ins builds an instruction tersely.
func ins(op isa.Opcode, rd, rs1, rs2 isa.Reg, imm int32) isa.Instruction {
	return isa.Instruction{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2, Imm: imm}
}

// TestThreadedMatchesInterpreter runs hand-built programs covering every
// control-flow and fault shape through both engines and requires
// bit-identical outcomes.
func TestThreadedMatchesInterpreter(t *testing.T) {
	const base = 0x00400000
	seed := func(c *CPU) {
		c.Regs[1] = 0x20000000 // packet
		c.Regs[2] = 0x10000000 // data
		c.Regs[3] = 0x7FFF8000 // stack
	}
	cases := []struct {
		name     string
		text     []isa.Instruction
		maxSteps uint64
	}{
		{"halt", []isa.Instruction{ins(isa.HALT, 0, 0, 0, 0)}, 100},
		{"count-loop", []isa.Instruction{
			ins(isa.ADDI, 4, 0, 0, 10), // t = 10
			ins(isa.ADDI, 5, 5, 0, 3),  // acc += 3
			ins(isa.ADDI, 4, 4, 0, -1), // t--
			ins(isa.BNE, 0, 4, 0, -3),  // loop
			ins(isa.JALR, 0, 15, 0, 0), // ret (ra seeded? no) -> bad fetch at 0
		}, 1000},
		{"store-load-roundtrip", []isa.Instruction{
			ins(isa.LUI, 6, 0, 0, 0xDEAD>>0),
			ins(isa.ORI, 6, 6, 0, 0xBE),
			ins(isa.SW, 6, 1, 0, 4),
			ins(isa.LW, 7, 1, 0, 4),
			ins(isa.SH, 6, 2, 0, 2),
			ins(isa.LHU, 8, 2, 0, 2),
			ins(isa.LH, 9, 2, 0, 2),
			ins(isa.SB, 6, 3, 0, -1),
			ins(isa.LBU, 10, 3, 0, -1),
			ins(isa.LB, 11, 3, 0, -1),
			ins(isa.HALT, 0, 0, 0, 0),
		}, 100},
		{"alu-zoo", []isa.Instruction{
			ins(isa.ADDI, 4, 0, 0, -7),
			ins(isa.ADDI, 5, 0, 0, 13),
			ins(isa.ADD, 6, 4, 5, 0),
			ins(isa.SUB, 7, 4, 5, 0),
			ins(isa.MUL, 8, 4, 5, 0),
			ins(isa.SLT, 9, 4, 5, 0),
			ins(isa.SLTU, 10, 4, 5, 0),
			ins(isa.SRA, 11, 4, 5, 0),
			ins(isa.SRL, 12, 4, 5, 0),
			ins(isa.SLL, 13, 4, 5, 0),
			ins(isa.SLTI, 4, 4, 0, -6),
			ins(isa.SLTIU, 5, 5, 0, -1),
			ins(isa.SRAI, 6, 6, 0, 31),
			ins(isa.XOR, 7, 7, 6, 0),
			ins(isa.AND, 8, 8, 7, 0),
			ins(isa.OR, 9, 9, 8, 0),
			ins(isa.HALT, 0, 0, 0, 0),
		}, 100},
		{"zero-reg-targets", []isa.Instruction{
			ins(isa.ADDI, 0, 0, 0, 99), // discarded
			ins(isa.LUI, 0, 0, 0, 99),  // discarded
			ins(isa.LW, 0, 1, 0, 0),    // load checks run, write discarded
			ins(isa.JAL, 0, 0, 0, 0),   // jump, no link
			ins(isa.HALT, 0, 0, 0, 0),
		}, 100},
		{"call-and-return", []isa.Instruction{
			ins(isa.JAL, 15, 0, 0, 2), // call +3 (skips the next two)
			ins(isa.ADDI, 4, 4, 0, 1), // return point
			ins(isa.HALT, 0, 0, 0, 0),
			ins(isa.ADDI, 5, 5, 0, 42), // callee
			ins(isa.JALR, 0, 15, 0, 0), // ret
		}, 100},
		{"jalr-misaligned-target", []isa.Instruction{
			ins(isa.ADDI, 4, 0, 0, 0x100),
			ins(isa.JALR, 0, 4, 0, 2), // target (0x100+2)&^3 = 0x100: bad fetch
		}, 100},
		{"branch-out-of-text", []isa.Instruction{
			ins(isa.BEQ, 0, 0, 0, 100),
		}, 100},
		{"branch-backward-out-of-text", []isa.Instruction{
			ins(isa.BEQ, 0, 0, 0, -100),
		}, 100},
		{"jal-out-of-text", []isa.Instruction{
			ins(isa.JAL, 15, 0, 0, 1<<19),
		}, 100},
		{"fall-off-end", []isa.Instruction{
			ins(isa.ADDI, 4, 0, 0, 1),
			ins(isa.ADDI, 4, 4, 0, 1),
		}, 100},
		{"unaligned-word-load", []isa.Instruction{
			ins(isa.LW, 4, 1, 0, 2),
		}, 100},
		{"unaligned-half-store", []isa.Instruction{
			ins(isa.SH, 4, 1, 0, 1),
		}, 100},
		{"unmapped-load", []isa.Instruction{
			ins(isa.LW, 4, 0, 0, 0x100), // address 0x100: unmapped
		}, 100},
		{"text-read-faults", []isa.Instruction{
			ins(isa.LUI, 4, 0, 0, int32(base>>12)),
			ins(isa.LW, 5, 4, 0, 0),
		}, 100},
		{"text-write-faults", []isa.Instruction{
			ins(isa.LUI, 4, 0, 0, int32(base>>12)),
			ins(isa.SW, 5, 4, 0, 0),
		}, 100},
		{"step-limit-mid-block", []isa.Instruction{
			ins(isa.ADDI, 4, 4, 0, 1),
			ins(isa.ADDI, 4, 4, 0, 1),
			ins(isa.ADDI, 4, 4, 0, 1),
			ins(isa.ADDI, 4, 4, 0, 1),
			ins(isa.ADDI, 4, 4, 0, 1),
			ins(isa.HALT, 0, 0, 0, 0),
		}, 3},
		{"step-limit-on-loop", []isa.Instruction{
			ins(isa.BEQ, 0, 0, 0, -1), // tight self-loop
		}, 17},
		{"bad-instr", []isa.Instruction{
			ins(isa.ADDI, 4, 0, 0, 1),
			ins(isa.Opcode(200), 4, 0, 0, 0),
			ins(isa.HALT, 0, 0, 0, 0),
		}, 100},
		{"packet-watermark", []isa.Instruction{
			ins(isa.SW, 4, 1, 0, 60),
			ins(isa.SB, 4, 1, 0, 200),
			ins(isa.HALT, 0, 0, 0, 0),
		}, 100},
		{"return-address-jalr", []isa.Instruction{
			ins(isa.ADDI, 4, 4, 0, 5),
			ins(isa.JALR, 0, 15, 0, 0),
		}, 100},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			seedRA := func(c *CPU) {
				seed(c)
				c.Regs[15] = ReturnAddress
			}
			want := runEngine(t, tc.text, base, tc.maxSteps, false, nil, seedRA)
			got := runEngine(t, tc.text, base, tc.maxSteps, true, nil, seedRA)
			requireSameResult(t, want, got, "untraced")

			wt := &recordingTracer{}
			gt := &recordingTracer{}
			want = runEngine(t, tc.text, base, tc.maxSteps, false, wt, seedRA)
			got = runEngine(t, tc.text, base, tc.maxSteps, true, gt, seedRA)
			requireSameResult(t, want, got, "traced")
			if !reflect.DeepEqual(wt.instrs, gt.instrs) {
				t.Errorf("traced: Instr event streams differ:\ninterp:   %v\nthreaded: %v", wt.instrs, gt.instrs)
			}
			if !reflect.DeepEqual(wt.mems, gt.mems) {
				t.Errorf("traced: Mem event streams differ:\ninterp:   %v\nthreaded: %v", wt.mems, gt.mems)
			}
		})
	}
}

// recordingTracer captures the full tracer event streams for exact
// cross-engine comparison.
type recordingTracer struct {
	instrs []uint32
	mems   []memRec
	blocks []blockRec
}

type memRec struct {
	pc, addr uint32
	size     uint8
	write    bool
	region   Region
}

type blockRec struct {
	b      int
	leader bool
}

func (r *recordingTracer) Instr(pc uint32, in isa.Instruction) { r.instrs = append(r.instrs, pc) }
func (r *recordingTracer) Mem(pc, addr uint32, size uint8, write bool, region Region) {
	r.mems = append(r.mems, memRec{pc, addr, size, write, region})
}

// blockRecorder additionally implements BlockTracer.
type blockRecorder struct {
	recordingTracer
}

func (r *blockRecorder) EnterBlock(b int, leader bool) {
	r.blocks = append(r.blocks, blockRec{b, leader})
}

// TestThreadedMidBlockEntry drives a JALR into the middle of a basic
// block (a computed target that is not a leader) and checks both the
// architectural result and that EnterBlock reports leader=false.
func TestThreadedMidBlockEntry(t *testing.T) {
	const base = 0x00400000
	// Block 0: addi, jalr. Block 1 (fall through target creation): the
	// jalr jumps to base+16 — the middle of the straight-line run
	// base+8..base+20 — which is not a leader.
	text := []isa.Instruction{
		ins(isa.ADDI, 4, 0, 0, int32(0x10)), // r4 = 16
		ins(isa.JALR, 5, 4, 0, int32(base)), // jump to base+16, link r5
		ins(isa.ADDI, 6, 6, 0, 1),           // base+8  (leader: after control)
		ins(isa.ADDI, 6, 6, 0, 2),           // base+12
		ins(isa.ADDI, 6, 6, 0, 4),           // base+16 <- entered mid-block
		ins(isa.ADDI, 6, 6, 0, 8),           // base+20
		ins(isa.HALT, 0, 0, 0, 0),
	}
	want := runEngine(t, text, base, 100, false, nil, nil)
	rec := &blockRecorder{}
	got := runEngine(t, text, base, 100, true, rec, nil)
	// Traced vs untraced interpreter state must also agree.
	requireSameResult(t, want, got, "mid-block entry")
	if got.Regs[6] != 4+8 {
		t.Fatalf("r6 = %d, want 12 (entered at base+16)", got.Regs[6])
	}
	foundMid := false
	for _, b := range rec.blocks {
		if !b.leader {
			foundMid = true
		}
	}
	if !foundMid {
		t.Fatalf("no mid-block EnterBlock reported; blocks: %+v", rec.blocks)
	}
}

// TestMultiTracerEnterBlock checks that MultiTracer forwards EnterBlock
// to block-aware members and skips plain tracers.
func TestMultiTracerEnterBlock(t *testing.T) {
	const base = 0x00400000
	text := []isa.Instruction{
		ins(isa.ADDI, 4, 0, 0, 1),
		ins(isa.HALT, 0, 0, 0, 0),
	}
	plain := &recordingTracer{}
	aware := &blockRecorder{}
	mt := MultiTracer{plain, aware}
	res := runEngine(t, text, base, 100, true, mt, nil)
	if res.Fault != nil {
		t.Fatal(res.Fault)
	}
	if len(aware.blocks) == 0 {
		t.Fatal("block-aware member saw no EnterBlock")
	}
	if len(plain.instrs) != 2 || len(aware.instrs) != 2 {
		t.Fatalf("Instr fan-out broken: plain %d, aware %d", len(plain.instrs), len(aware.instrs))
	}
}

// TestPageCacheSeesHostWrites runs the threaded engine twice with a host
// write in between, on a page the first run read while unallocated: the
// cache must not serve a stale zero page.
func TestPageCacheSeesHostWrites(t *testing.T) {
	const base = 0x00400000
	text := []isa.Instruction{
		ins(isa.LW, 4, 1, 0, 0), // read packet[0]
		ins(isa.HALT, 0, 0, 0, 0),
	}
	cpu := New(text, base, NewMemory())
	cpu.Layout = testLayout(base, len(text))
	prog := Translate(text, base, analysis.NewBlockMap(text, base))

	cpu.Regs[1] = cpu.Layout.PacketBase
	cpu.PC = base
	if _, _, err := cpu.RunProgram(prog, 100); err != nil {
		t.Fatal(err)
	}
	if cpu.Regs[4] != 0 {
		t.Fatalf("unallocated page read %#x, want 0", cpu.Regs[4])
	}

	// Host allocates and fills the page between runs.
	cpu.Mem.Write32(cpu.Layout.PacketBase, 0xCAFEF00D)
	cpu.Regs[1] = cpu.Layout.PacketBase
	cpu.PC = base
	if _, _, err := cpu.RunProgram(prog, 100); err != nil {
		t.Fatal(err)
	}
	if cpu.Regs[4] != 0xCAFEF00D {
		t.Fatalf("second run read %#x, want 0xCAFEF00D", cpu.Regs[4])
	}
}

// TestThreadedStepsAccumulate checks the lifetime step counter matches
// the interpreter across multiple RunProgram calls.
func TestThreadedStepsAccumulate(t *testing.T) {
	const base = 0x00400000
	text := []isa.Instruction{
		ins(isa.ADDI, 4, 4, 0, 1),
		ins(isa.ADDI, 4, 4, 0, 1),
		ins(isa.HALT, 0, 0, 0, 0),
	}
	cpu := New(text, base, NewMemory())
	cpu.Layout = testLayout(base, len(text))
	prog := Translate(text, base, analysis.NewBlockMap(text, base))
	for i := 0; i < 3; i++ {
		cpu.PC = base
		if _, _, err := cpu.RunProgram(prog, 100); err != nil {
			t.Fatal(err)
		}
	}
	if cpu.Steps() != 9 {
		t.Fatalf("lifetime steps = %d, want 9", cpu.Steps())
	}
}

// TestNoProofNoUncheckedOps is the hostile half of the proof-guided
// translation contract: without verifier proofs, no memory check may be
// elided and no branch folded, no matter how fusable the program looks.
// Plain Translate (the Options.NoVerify path) must additionally emit no
// proof-guided micro-ops at all — not even superinstructions.
func TestNoProofNoUncheckedOps(t *testing.T) {
	const base = 0x00400000
	// Loads, stores, a fusable ALU chain, and a loop latch: everything
	// the optimizer would love to touch.
	text := []isa.Instruction{
		ins(isa.LW, 4, 1, 0, 0),
		ins(isa.SRLI, 5, 4, 0, 8),
		ins(isa.SLLI, 5, 5, 0, 2),
		ins(isa.ANDI, 6, 5, 0, 0xFF),
		ins(isa.OR, 6, 6, 4, 0),
		ins(isa.ADD, 6, 6, 1, 0),
		ins(isa.SW, 6, 3, 0, -8),
		ins(isa.ADDI, 7, 7, 0, 1),
		ins(isa.BLT, 0, 7, 8, -8),
		ins(isa.HALT, 0, 0, 0, 0),
	}
	blocks := analysis.NewBlockMap(text, base)

	plain := Translate(text, base, blocks)
	if plain.stats != (TranslateStats{}) {
		t.Fatalf("plain Translate has non-zero stats: %+v", plain.stats)
	}
	for i, op := range plain.fops {
		if op.code > uBAD {
			t.Fatalf("plain Translate emitted proof-guided code %d at %d", op.code, i)
		}
	}

	for _, tc := range []struct {
		name  string
		facts *TranslationFacts
	}{
		{"nil facts", nil},
		{"empty facts", &TranslationFacts{}},
	} {
		p := TranslateWithFacts(text, base, blocks, tc.facts)
		st := p.Stats()
		if st.UncheckedLoads+st.UncheckedStores+st.FoldedBranches+st.ElidedMasks+st.DeadBlocks != 0 {
			t.Fatalf("%s: elision without proof: %+v", tc.name, st)
		}
		for i, op := range p.fops {
			if op.code >= uULB && op.code <= uGOTO {
				t.Fatalf("%s: unchecked/folded code %d at %d", tc.name, op.code, i)
			}
		}
		// Fusion itself needs no proofs and must still fire, and every
		// consumed slot must keep its single-op form for mid-entry.
		if st.FusedPairs+st.FusedTriples+st.FusedWide == 0 {
			t.Fatalf("%s: no fusion on a fusable program", tc.name)
		}
		for i, op := range p.fops {
			if op.code > uGOTO || i == 0 {
				continue // fused heads diverge from the plain form by design
			}
			if op != plain.fops[i] && op.code <= uBAD && p.fops[i-1].code <= uGOTO {
				t.Fatalf("%s: non-head slot %d changed: %+v vs %+v", tc.name, i, op, plain.fops[i])
			}
		}
	}
}

// TestReadBytesPageRuns covers the page-run ReadBytes across page
// boundaries and unallocated holes.
func TestReadBytesPageRuns(t *testing.T) {
	m := NewMemory()
	// Write a run straddling the first/second page boundary, leave the
	// third page unallocated, write again in the fourth.
	base := uint32(pageSize - 3)
	m.WriteBytes(base, []byte{1, 2, 3, 4, 5, 6})
	m.Write8(3*pageSize+7, 0xAB)

	got := m.ReadBytes(base, 6)
	if want := []byte{1, 2, 3, 4, 5, 6}; !reflect.DeepEqual(got, want) {
		t.Fatalf("boundary read = %v, want %v", got, want)
	}
	// Read a span covering written, unallocated, and written pages.
	span := m.ReadBytes(0, 4*pageSize)
	if span[base] != 1 || span[base+5] != 6 {
		t.Fatal("span lost the boundary run")
	}
	if span[2*pageSize+100] != 0 {
		t.Fatal("unallocated page not zero")
	}
	if span[3*pageSize+7] != 0xAB {
		t.Fatal("span lost the fourth-page byte")
	}
}
