// Package vm implements the PB32 instruction-level simulator that executes
// PacketBench applications.
//
// The simulator models a single network-processor core: sixteen 32-bit
// registers, a program counter, and a flat little-endian byte-addressed
// memory divided into semantically tagged regions (text, packet data,
// program data, stack). The region tags are what make PacketBench-style
// workload characterization possible: every memory reference the
// application performs is classified as a packet-memory or non-packet-
// memory access, a distinction the paper identifies as essential for
// network processor design and one that general-purpose simulators do not
// make.
//
// Selective accounting — the paper's mechanism for excluding framework
// processing from the collected statistics — falls out of the design: the
// PacketBench framework (trace parsing, packet placement, route-table
// construction) runs as native host code that writes directly into
// simulated memory via the Memory type, while only application code is
// fetched and executed by the CPU. The Tracer hook therefore observes
// exactly the instructions the application itself would execute on a
// network processor core, and nothing else.
package vm

import (
	"fmt"

	"repro/internal/isa"
)

// Region classifies an address within the simulated address space. The
// split between RegionPacket and RegionData mirrors the paper's distinction
// between packet memory (the buffer the framework placed the packet in) and
// non-packet memory (routing tables, flow tables, application state).
type Region uint8

// The address-space regions of a PacketBench core.
const (
	RegionNone   Region = iota // unmapped; any access faults
	RegionText   Region = iota // instructions; writes fault
	RegionPacket               // packet buffer placed by the framework
	RegionData                 // application static data and heap
	RegionStack                // call stack

	numRegions = int(RegionStack) + 1

	// pageCacheSlots sizes the CPU's direct-mapped last-page cache; the
	// hot working set of a packet program is a handful of pages (packet,
	// stack, a table page or three), so 32 slots make collisions rare.
	// Slots are picked by multiplicative hash, NOT by pidx low bits:
	// region bases are large powers of two, so the hot pages' indexes
	// share all their low bits and a low-bits scheme piles every region
	// onto slot zero.
	pageCacheSlots = 32
)

var regionNames = map[Region]string{
	RegionNone:   "unmapped",
	RegionText:   "text",
	RegionPacket: "packet",
	RegionData:   "data",
	RegionStack:  "stack",
}

// String returns the lower-case region name.
func (r Region) String() string {
	if n, ok := regionNames[r]; ok {
		return n
	}
	return fmt.Sprintf("region?%d", uint8(r))
}

// Layout defines the boundaries of each region. All bounds are half-open:
// a region spans [Base, End).
type Layout struct {
	TextBase, TextEnd     uint32
	PacketBase, PacketEnd uint32
	DataBase, DataEnd     uint32
	StackBase, StackEnd   uint32
}

// Classify returns the region containing addr.
func (l Layout) Classify(addr uint32) Region {
	switch {
	case addr >= l.TextBase && addr < l.TextEnd:
		return RegionText
	case addr >= l.PacketBase && addr < l.PacketEnd:
		return RegionPacket
	case addr >= l.DataBase && addr < l.DataEnd:
		return RegionData
	case addr >= l.StackBase && addr < l.StackEnd:
		return RegionStack
	}
	return RegionNone
}

// Tracer observes application execution. Implementations must be cheap;
// the Instr hook runs once per simulated instruction. A nil Tracer on the
// CPU disables tracing entirely.
type Tracer interface {
	// Instr is called before each instruction executes.
	Instr(pc uint32, in isa.Instruction)
	// Mem is called for each data memory access (never for instruction
	// fetches). size is 1, 2 or 4; region is the classification of addr.
	Mem(pc uint32, addr uint32, size uint8, write bool, region Region)
}

// FaultKind enumerates the ways simulated execution can fail. It
// implements error so a bare kind can be used as an errors.Is target:
//
//	if errors.Is(err, vm.FaultStepLimit) { ... }
type FaultKind uint8

// The fault kinds raised by the simulator. FaultOversizePacket and
// FaultHostPanic are raised by the framework around the simulator (packet
// placement and panic recovery) rather than by the instruction loop, but
// share the taxonomy so error policies can treat every per-packet failure
// uniformly.
const (
	FaultNone           FaultKind = iota
	FaultBadFetch                 // pc outside the text segment
	FaultUnmapped                 // data access to an unmapped address
	FaultUnaligned                // halfword/word access to a misaligned address
	FaultTextWrite                // store into the text segment
	FaultStepLimit                // execution exceeded the step budget
	FaultBadInstr                 // undecodable instruction (cannot happen with assembled code)
	FaultOversizePacket           // packet larger than the packet buffer
	FaultHostPanic                // panic recovered during simulated execution
)

var faultNames = map[FaultKind]string{
	FaultBadFetch:       "instruction fetch outside text segment",
	FaultUnmapped:       "access to unmapped address",
	FaultUnaligned:      "unaligned access",
	FaultTextWrite:      "store into text segment",
	FaultStepLimit:      "step limit exceeded",
	FaultBadInstr:       "undecodable instruction",
	FaultOversizePacket: "packet exceeds the packet buffer",
	FaultHostPanic:      "panic during simulated execution",
}

// String returns the human-readable fault name.
func (k FaultKind) String() string {
	if k == FaultNone {
		return "none"
	}
	if n, ok := faultNames[k]; ok {
		return n
	}
	return fmt.Sprintf("fault?%d", uint8(k))
}

// Error implements error, making a FaultKind usable directly as an
// errors.Is target for any wrapped *Fault of that kind.
func (k FaultKind) Error() string { return "vm: " + k.String() }

// Fault is the error returned when simulated execution traps.
type Fault struct {
	Kind FaultKind
	PC   uint32 // pc of the faulting instruction
	Addr uint32 // offending data address, when applicable
}

func (f *Fault) Error() string {
	// Kind.String, not Kind itself: fmt would pick the Error method
	// (which already carries the "vm: " prefix) and double it.
	return fmt.Sprintf("vm: %s at pc=%#x addr=%#x", f.Kind.String(), f.PC, f.Addr)
}

// Unwrap exposes the kind, so errors.Is(err, vm.FaultUnmapped) matches
// through arbitrary wrapping.
func (f *Fault) Unwrap() error { return f.Kind }

// Is reports whether target names the same failure: a FaultKind matches
// by kind alone; a *Fault matches by kind with zero PC/Addr fields acting
// as wildcards, so errors.Is(err, &vm.Fault{Kind: vm.FaultUnmapped})
// works without knowing the faulting address.
func (f *Fault) Is(target error) bool {
	switch t := target.(type) {
	case FaultKind:
		return f.Kind == t
	case *Fault:
		return f.Kind == t.Kind &&
			(t.PC == 0 || t.PC == f.PC) &&
			(t.Addr == 0 || t.Addr == f.Addr)
	}
	return false
}

// StopReason reports why Run returned without a fault.
type StopReason uint8

// Reasons a Run completes normally.
const (
	StopHalt   StopReason = iota // the application executed HALT
	StopReturn                   // the application returned to ReturnAddress
)

// ReturnAddress is the magic link-register value the framework passes to
// the application: a jump to it (the final "ret") ends the run. It sits in
// otherwise unmappable high memory, word aligned.
const ReturnAddress uint32 = 0xFFFFFFF0

// CPU is one simulated PB32 core.
type CPU struct {
	Regs [isa.NumRegs]uint32
	PC   uint32

	Mem    *Memory
	Layout Layout
	// Tracer, when non-nil, observes every executed instruction and data
	// access.
	Tracer Tracer

	text     []isa.Instruction
	textBase uint32
	steps    uint64 // instructions executed over the CPU's lifetime

	// packetWriteHigh is the exclusive end address of the highest
	// packet-region store since the last ResetPacketWriteHigh. The
	// framework uses it to bound how much of the packet buffer a run can
	// have dirtied, so the next packet placement only has to clear bytes
	// that were actually written.
	packetWriteHigh uint32

	// Direct-mapped last-page cache used by the block-threaded engine:
	// consecutive accesses to the same 4 KiB page skip the Memory.pages
	// map lookup. Keyed by the low bits of the page index, so hot pages
	// in the same region (a lookup table straddling pages, table reads
	// interleaved with result stores) get separate slots instead of
	// thrashing one shared per-region slot. Pages are never freed or
	// replaced once allocated, so a cached pointer can never go stale;
	// only nil lookups are left uncached (a host write could allocate
	// the page later).
	pageCache    [pageCacheSlots]*page
	pageCacheIdx [pageCacheSlots]uint32

	// cframe is the compiled tier's execution frame (compile.go): the
	// typed side-exit record chain closures write on their way back to
	// the dispatcher. Embedded here so entering a chain allocates
	// nothing and the materialized exit state lives with the rest of
	// the CPU state it describes.
	cframe cframe
}

// New creates a CPU executing the given pre-decoded text segment. The
// layout's text bounds are derived from textBase and len(text); packet,
// data and stack bounds must be assigned by the caller before Run.
func New(text []isa.Instruction, textBase uint32, mem *Memory) *CPU {
	c := &CPU{Mem: mem, text: text, textBase: textBase}
	c.Layout.TextBase = textBase
	c.Layout.TextEnd = textBase + uint32(len(text))*isa.WordSize
	return c
}

// Steps returns the total number of instructions executed by this CPU
// since creation.
func (c *CPU) Steps() uint64 { return c.steps }

// PacketWriteHigh returns the exclusive end address of the highest
// packet-region store since the last ResetPacketWriteHigh, or zero if the
// packet buffer was not written.
func (c *CPU) PacketWriteHigh() uint32 { return c.packetWriteHigh }

// ResetPacketWriteHigh clears the packet-store watermark; the framework
// calls it before each packet run.
func (c *CPU) ResetPacketWriteHigh() { c.packetWriteHigh = 0 }

// Reg returns the value of register r (a convenience for host code).
func (c *CPU) Reg(r isa.Reg) uint32 { return c.Regs[r] }

// SetReg assigns register r. Writes to the zero register are discarded,
// matching the architecture.
func (c *CPU) SetReg(r isa.Reg, v uint32) {
	if r != isa.Zero {
		c.Regs[r] = v
	}
}

// Run executes instructions starting at c.PC until the application halts,
// returns to ReturnAddress, faults, or exceeds maxSteps. It returns the
// number of instructions executed by this call.
func (c *CPU) Run(maxSteps uint64) (steps uint64, reason StopReason, err error) {
	for {
		if c.PC == ReturnAddress {
			return steps, StopReturn, nil
		}
		if steps >= maxSteps {
			return steps, 0, &Fault{Kind: FaultStepLimit, PC: c.PC}
		}
		off := c.PC - c.textBase
		if off%isa.WordSize != 0 || off/isa.WordSize >= uint32(len(c.text)) {
			return steps, 0, &Fault{Kind: FaultBadFetch, PC: c.PC}
		}
		in := c.text[off/isa.WordSize]
		if c.Tracer != nil {
			c.Tracer.Instr(c.PC, in)
		}
		steps++
		c.steps++
		halt, err := c.execute(in)
		if err != nil {
			return steps, 0, err
		}
		if halt {
			return steps, StopHalt, nil
		}
	}
}

// execute runs one instruction, updating registers, memory and the pc.
func (c *CPU) execute(in isa.Instruction) (halt bool, err error) {
	pc := c.PC
	next := pc + isa.WordSize
	rs1 := c.Regs[in.Rs1]
	rs2 := c.Regs[in.Rs2]
	imm := uint32(in.Imm)

	setRd := func(v uint32) {
		if in.Rd != isa.Zero {
			c.Regs[in.Rd] = v
		}
	}

	switch in.Op {
	case isa.ADD:
		setRd(rs1 + rs2)
	case isa.SUB:
		setRd(rs1 - rs2)
	case isa.AND:
		setRd(rs1 & rs2)
	case isa.OR:
		setRd(rs1 | rs2)
	case isa.XOR:
		setRd(rs1 ^ rs2)
	case isa.SLL:
		setRd(rs1 << (rs2 & 31))
	case isa.SRL:
		setRd(rs1 >> (rs2 & 31))
	case isa.SRA:
		setRd(uint32(int32(rs1) >> (rs2 & 31)))
	case isa.SLT:
		setRd(b2u(int32(rs1) < int32(rs2)))
	case isa.SLTU:
		setRd(b2u(rs1 < rs2))
	case isa.MUL:
		setRd(rs1 * rs2)

	case isa.ADDI:
		setRd(rs1 + imm)
	case isa.ANDI:
		setRd(rs1 & imm)
	case isa.ORI:
		setRd(rs1 | imm)
	case isa.XORI:
		setRd(rs1 ^ imm)
	case isa.SLLI:
		setRd(rs1 << (imm & 31))
	case isa.SRLI:
		setRd(rs1 >> (imm & 31))
	case isa.SRAI:
		setRd(uint32(int32(rs1) >> (imm & 31)))
	case isa.SLTI:
		setRd(b2u(int32(rs1) < in.Imm))
	case isa.SLTIU:
		setRd(b2u(rs1 < imm))

	case isa.LUI:
		setRd(imm << 12)

	case isa.LB, isa.LBU, isa.LH, isa.LHU, isa.LW:
		addr := rs1 + imm
		v, err := c.load(pc, addr, in.Op)
		if err != nil {
			return false, err
		}
		setRd(v)

	case isa.SB, isa.SH, isa.SW:
		addr := rs1 + imm
		if err := c.store(pc, addr, in.Op, c.Regs[in.Rd]); err != nil {
			return false, err
		}

	case isa.BEQ:
		if rs1 == rs2 {
			next = pc + isa.WordSize + imm*isa.WordSize
		}
	case isa.BNE:
		if rs1 != rs2 {
			next = pc + isa.WordSize + imm*isa.WordSize
		}
	case isa.BLT:
		if int32(rs1) < int32(rs2) {
			next = pc + isa.WordSize + imm*isa.WordSize
		}
	case isa.BGE:
		if int32(rs1) >= int32(rs2) {
			next = pc + isa.WordSize + imm*isa.WordSize
		}
	case isa.BLTU:
		if rs1 < rs2 {
			next = pc + isa.WordSize + imm*isa.WordSize
		}
	case isa.BGEU:
		if rs1 >= rs2 {
			next = pc + isa.WordSize + imm*isa.WordSize
		}

	case isa.JAL:
		setRd(next)
		next = pc + isa.WordSize + imm*isa.WordSize
	case isa.JALR:
		target := (rs1 + imm) &^ 3
		setRd(pc + isa.WordSize)
		next = target

	case isa.HALT:
		return true, nil

	default:
		return false, &Fault{Kind: FaultBadInstr, PC: pc}
	}
	c.PC = next
	return false, nil
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// load performs a data read with region classification, alignment checking
// and tracing.
func (c *CPU) load(pc, addr uint32, op isa.Opcode) (uint32, error) {
	size := uint32(op.MemSize())
	if addr%size != 0 {
		return 0, &Fault{Kind: FaultUnaligned, PC: pc, Addr: addr}
	}
	region := c.Layout.Classify(addr)
	if region == RegionNone || region == RegionText {
		// Reading the text segment as data is disallowed: PacketBench
		// applications keep constants in the data segment, and a text read
		// almost always indicates a pointer bug in the application.
		return 0, &Fault{Kind: FaultUnmapped, PC: pc, Addr: addr}
	}
	if c.Tracer != nil {
		c.Tracer.Mem(pc, addr, uint8(size), false, region)
	}
	var v uint32
	switch op {
	case isa.LB:
		v = uint32(int32(int8(c.Mem.Read8(addr))))
	case isa.LBU:
		v = uint32(c.Mem.Read8(addr))
	case isa.LH:
		v = uint32(int32(int16(c.Mem.Read16(addr))))
	case isa.LHU:
		v = uint32(c.Mem.Read16(addr))
	case isa.LW:
		v = c.Mem.Read32(addr)
	}
	return v, nil
}

// store performs a data write with region classification, alignment
// checking and tracing.
func (c *CPU) store(pc, addr uint32, op isa.Opcode, v uint32) error {
	size := uint32(op.MemSize())
	if addr%size != 0 {
		return &Fault{Kind: FaultUnaligned, PC: pc, Addr: addr}
	}
	region := c.Layout.Classify(addr)
	switch region {
	case RegionText:
		return &Fault{Kind: FaultTextWrite, PC: pc, Addr: addr}
	case RegionNone:
		return &Fault{Kind: FaultUnmapped, PC: pc, Addr: addr}
	case RegionPacket:
		if end := addr + size; end > c.packetWriteHigh {
			c.packetWriteHigh = end
		}
	}
	if c.Tracer != nil {
		c.Tracer.Mem(pc, addr, uint8(size), true, region)
	}
	switch op {
	case isa.SB:
		c.Mem.Write8(addr, uint8(v))
	case isa.SH:
		c.Mem.Write16(addr, uint16(v))
	case isa.SW:
		c.Mem.Write32(addr, v)
	}
	return nil
}

// MultiTracer fans tracer events out to several tracers, letting the
// workload collector and a microarchitectural profiler observe the same
// run.
type MultiTracer []Tracer

// Instr implements Tracer.
func (m MultiTracer) Instr(pc uint32, in isa.Instruction) {
	for _, t := range m {
		t.Instr(pc, in)
	}
}

// Mem implements Tracer.
func (m MultiTracer) Mem(pc, addr uint32, size uint8, write bool, region Region) {
	for _, t := range m {
		t.Mem(pc, addr, size, write, region)
	}
}
