package vm

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/isa"
)

// FuzzVM feeds the simulator arbitrary instruction streams (including
// opcodes past the decodable range) over a standard layout and asserts
// the robustness contract the run engine's fault policies depend on:
// execution never panics, every failure is a *Fault, and the zero
// register stays zero. CI runs this as a short -fuzz smoke.
func FuzzVM(f *testing.F) {
	f.Add([]byte{0})
	f.Add([]byte{byte(isa.HALT), 0, 0, 0, 0, 0})
	f.Add([]byte{
		byte(isa.LW), 1, 2, 0, 0x10, 0x00, // lw r1, imm(r2)
		byte(isa.SW), 1, 3, 0, 0xFE, 0xFF, // sw r1, imm(r3)
		byte(isa.JALR), 0, 1, 0, 0, 0,
	})
	f.Add([]byte{255, 255, 255, 255, 255, 255})
	f.Fuzz(func(t *testing.T, b []byte) {
		n := len(b) / 6
		if n == 0 || n > 4096 {
			t.Skip()
		}
		text := make([]isa.Instruction, n)
		for i := 0; i < n; i++ {
			w := b[i*6 : i*6+6]
			text[i] = isa.Instruction{
				// Reach a little past numOpcodes so undecodable
				// instructions (FaultBadInstr) are exercised too.
				Op:  isa.Opcode(int(w[0]) % (isa.NumOpcodes + 3)),
				Rd:  isa.Reg(w[1] % isa.NumRegs),
				Rs1: isa.Reg(w[2] % isa.NumRegs),
				Rs2: isa.Reg(w[3] % isa.NumRegs),
				Imm: int32(int16(uint16(w[4]) | uint16(w[5])<<8)),
			}
		}
		const textBase = 0x00400000
		cpu := New(text, textBase, NewMemory())
		cpu.Layout.PacketBase = 0x20000000
		cpu.Layout.PacketEnd = 0x20010000
		cpu.Layout.DataBase = 0x10000000
		cpu.Layout.DataEnd = 0x10100000
		cpu.Layout.StackBase = 0x7FFF0000
		cpu.Layout.StackEnd = 0x80000000
		cpu.Regs[1] = 0x20000000
		cpu.Regs[2] = 0x10000000
		cpu.Regs[3] = 0x7FFF8000
		cpu.PC = textBase

		_, _, err := cpu.Run(50_000)
		if err != nil {
			var fault *Fault
			if !errors.As(err, &fault) {
				t.Fatalf("non-Fault error from Run: %v", err)
			}
			if fault.Kind == FaultNone {
				t.Fatalf("fault with FaultNone kind: %+v", fault)
			}
		}
		if cpu.Regs[isa.Zero] != 0 {
			t.Fatalf("zero register clobbered: %#x", cpu.Regs[isa.Zero])
		}
	})
}

// FuzzEngineDiff is the differential fuzzer behind the engine-equivalence
// contract: arbitrary instruction streams (same input encoding as FuzzVM)
// run through the reference interpreter and the block-threaded engine,
// untraced and traced, and every observable — registers, final PC, step
// count, stop reason, fault kind/PC/Addr, packet watermark, memory image,
// tracer event streams — must be bit-identical. CI runs this as a short
// -fuzz smoke.
// seedProg encodes instructions in the fuzzers' 6-byte wire form, for
// seeding structured idioms (fusion patterns, boundary accesses) that
// random mutation is slow to discover.
func seedProg(ins ...isa.Instruction) []byte {
	b := make([]byte, 0, len(ins)*6)
	for _, in := range ins {
		b = append(b, byte(in.Op), byte(in.Rd), byte(in.Rs1), byte(in.Rs2),
			byte(uint16(in.Imm)), byte(uint16(in.Imm)>>8))
	}
	return b
}

func FuzzEngineDiff(f *testing.F) {
	f.Add([]byte{byte(isa.HALT), 0, 0, 0, 0, 0})
	// The TSA sub-key walk shape: the srli/slli/andi/or/add bit-extract
	// chain, a checked table load, and the slli/or/xor/slli/or/addi/blt
	// tail — the exact sequences the translator fuses into its 5-wide
	// and 7-wide superinstructions, with the loop latch taken four times
	// and then falling through to a return.
	f.Add(seedProg(
		isa.Instruction{Op: isa.ORI, Rd: 10, Rs1: isa.Zero, Imm: 4},
		isa.Instruction{Op: isa.SRLI, Rd: 4, Rs1: 5, Imm: 31},
		isa.Instruction{Op: isa.SLLI, Rd: 5, Rs1: 5, Imm: 1},
		isa.Instruction{Op: isa.ANDI, Rd: 6, Rs1: 7, Imm: 0xFF},
		isa.Instruction{Op: isa.OR, Rd: 6, Rs1: 6, Rs2: 8},
		isa.Instruction{Op: isa.ADD, Rd: 6, Rs1: 6, Rs2: 1},
		isa.Instruction{Op: isa.LBU, Rd: 6, Rs1: 6, Imm: 0},
		isa.Instruction{Op: isa.SLLI, Rd: 7, Rs1: 7, Imm: 1},
		isa.Instruction{Op: isa.OR, Rd: 7, Rs1: 7, Rs2: 4},
		isa.Instruction{Op: isa.XOR, Rd: 4, Rs1: 4, Rs2: 6},
		isa.Instruction{Op: isa.SLLI, Rd: 9, Rs1: 9, Imm: 1},
		isa.Instruction{Op: isa.OR, Rd: 9, Rs1: 9, Rs2: 4},
		isa.Instruction{Op: isa.ADDI, Rd: 8, Rs1: 8, Imm: 1},
		isa.Instruction{Op: isa.BLT, Rs1: 8, Rs2: 10, Imm: -13},
		isa.Instruction{Op: isa.JALR, Rs1: 15},
	))
	// LUI+ORI constant build and ADDI+JAL call setup (uFLuiOri and
	// uFAddiJal), then AND+BNE (uFAndBne) on the return path.
	f.Add(seedProg(
		isa.Instruction{Op: isa.LUI, Rd: 4, Imm: 5},
		isa.Instruction{Op: isa.ORI, Rd: 4, Rs1: 4, Imm: 0x41},
		isa.Instruction{Op: isa.ADDI, Rd: 5, Rs1: 4, Imm: 1},
		isa.Instruction{Op: isa.JAL, Rd: 15, Imm: 1},
		isa.Instruction{Op: isa.HALT},
		isa.Instruction{Op: isa.AND, Rd: 6, Rs1: 4, Rs2: 5},
		isa.Instruction{Op: isa.BNE, Rs1: 6, Rs2: isa.Zero, Imm: 0},
		isa.Instruction{Op: isa.JALR, Rs1: 15},
	))
	// Boundary-straddling memory: a word load crossing a 4 KiB page
	// inside the packet region, a halfword at an odd address (alignment
	// fault path), and a store one byte short of the region end.
	f.Add(seedProg(
		isa.Instruction{Op: isa.LW, Rd: 4, Rs1: 1, Imm: 4094},
		isa.Instruction{Op: isa.LH, Rd: 5, Rs1: 1, Imm: 3},
		isa.Instruction{Op: isa.SB, Rd: 4, Rs1: 1, Imm: 255},
		isa.Instruction{Op: isa.JALR, Rs1: 15},
	))
	// Off-by-one control flow: a branch targeting the program's last
	// instruction and a branch falling off the end of text.
	f.Add(seedProg(
		isa.Instruction{Op: isa.BEQ, Rs1: isa.Zero, Rs2: isa.Zero, Imm: 1},
		isa.Instruction{Op: isa.ADDI, Rd: 4, Rs1: 4, Imm: 1},
		isa.Instruction{Op: isa.BGE, Rs1: 4, Rs2: isa.Zero, Imm: 1},
	))
	f.Add([]byte{
		byte(isa.ADDI), 4, 0, 0, 10, 0,
		byte(isa.ADDI), 4, 4, 0, 0xFF, 0xFF,
		byte(isa.BNE), 0, 4, 0, 0xFF, 0xFF,
		byte(isa.JALR), 0, 15, 0, 0, 0,
	})
	f.Add([]byte{
		byte(isa.LW), 4, 1, 0, 0, 0,
		byte(isa.SW), 4, 3, 0, 4, 0,
		byte(isa.SB), 4, 1, 0, 200, 0,
		byte(isa.JAL), 15, 0, 0, 0xFC, 0xFF,
	})
	f.Add([]byte{255, 255, 255, 255, 255, 255})
	f.Fuzz(func(t *testing.T, b []byte) {
		n := len(b) / 6
		if n == 0 || n > 4096 {
			t.Skip()
		}
		text := make([]isa.Instruction, n)
		for i := 0; i < n; i++ {
			w := b[i*6 : i*6+6]
			text[i] = isa.Instruction{
				Op:  isa.Opcode(int(w[0]) % (isa.NumOpcodes + 3)),
				Rd:  isa.Reg(w[1] % isa.NumRegs),
				Rs1: isa.Reg(w[2] % isa.NumRegs),
				Rs2: isa.Reg(w[3] % isa.NumRegs),
				Imm: int32(int16(uint16(w[4]) | uint16(w[5])<<8)),
			}
		}
		const textBase = 0x00400000
		const maxSteps = 50_000
		seed := func(c *CPU) {
			c.Regs[1] = 0x20000000
			c.Regs[2] = 0x10000000
			c.Regs[3] = 0x7FFF8000
			c.Regs[15] = ReturnAddress
		}
		want := runEngine(t, text, textBase, maxSteps, false, nil, seed)
		got := runEngine(t, text, textBase, maxSteps, true, nil, seed)
		requireSameResult(t, want, got, "untraced")

		wt := &recordingTracer{}
		gt := &recordingTracer{}
		want = runEngine(t, text, textBase, maxSteps, false, wt, seed)
		got = runEngine(t, text, textBase, maxSteps, true, gt, seed)
		requireSameResult(t, want, got, "traced")
		if !reflect.DeepEqual(wt.instrs, gt.instrs) {
			t.Fatalf("Instr event streams differ (%d vs %d events)", len(wt.instrs), len(gt.instrs))
		}
		if !reflect.DeepEqual(wt.mems, gt.mems) {
			t.Fatalf("Mem event streams differ (%d vs %d events)", len(wt.mems), len(gt.mems))
		}
	})
}
