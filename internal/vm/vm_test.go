package vm

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/asm"
	"repro/internal/isa"
)

// buildCPU assembles src and returns a CPU with a standard test layout:
// packet buffer at 0x20000000 (+64K), data at the assembler default
// (+1M), stack at 0x7FFF0000 (+64K).
func buildCPU(t *testing.T, src string) (*CPU, *asm.Program) {
	t.Helper()
	p, err := asm.Assemble(src, asm.Options{})
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	mem := NewMemory()
	mem.WriteBytes(p.DataBase, p.Data)
	c := New(p.Text, p.TextBase, mem)
	c.Layout.PacketBase = 0x20000000
	c.Layout.PacketEnd = 0x20010000
	c.Layout.DataBase = p.DataBase
	c.Layout.DataEnd = p.DataBase + 1<<20
	c.Layout.StackBase = 0x7FFF0000
	c.Layout.StackEnd = 0x80000000
	c.PC = p.TextBase
	c.Regs[isa.SP] = c.Layout.StackEnd
	c.Regs[isa.RA] = ReturnAddress
	return c, p
}

// run executes until a normal stop, failing the test on faults.
func run(t *testing.T, c *CPU) (uint64, StopReason) {
	t.Helper()
	steps, reason, err := c.Run(1 << 20)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return steps, reason
}

func TestALUOps(t *testing.T) {
	cases := []struct {
		name string
		src  string
		reg  isa.Reg
		want uint32
	}{
		{"add", "li a0, 5\nli a1, 7\nadd a2, a0, a1\nhalt", isa.A2, 12},
		{"sub", "li a0, 5\nli a1, 7\nsub a2, a0, a1\nhalt", isa.A2, 0xFFFFFFFE},
		{"and", "li a0, 0xF0F0\nli a1, 0xFF00\nand a2, a0, a1\nhalt", isa.A2, 0xF000},
		{"or", "li a0, 0xF0F0\nli a1, 0x0F0F\nor a2, a0, a1\nhalt", isa.A2, 0xFFFF},
		{"xor", "li a0, 0xFF\nli a1, 0x0F\nxor a2, a0, a1\nhalt", isa.A2, 0xF0},
		{"sll", "li a0, 1\nli a1, 4\nsll a2, a0, a1\nhalt", isa.A2, 16},
		{"srl", "li a0, 0x80000000\nli a1, 4\nsrl a2, a0, a1\nhalt", isa.A2, 0x08000000},
		{"sra", "li a0, 0x80000000\nli a1, 4\nsra a2, a0, a1\nhalt", isa.A2, 0xF8000000},
		{"slt true", "li a0, -1\nli a1, 1\nslt a2, a0, a1\nhalt", isa.A2, 1},
		{"slt false", "li a0, 1\nli a1, -1\nslt a2, a0, a1\nhalt", isa.A2, 0},
		{"sltu", "li a0, -1\nli a1, 1\nsltu a2, a0, a1\nhalt", isa.A2, 0}, // 0xFFFFFFFF not < 1
		{"mul", "li a0, 7\nli a1, 6\nmul a2, a0, a1\nhalt", isa.A2, 42},
		{"mul wrap", "li a0, 0x10000\nli a1, 0x10000\nmul a2, a0, a1\nhalt", isa.A2, 0},
		{"addi", "addi a2, zero, -7\nhalt", isa.A2, 0xFFFFFFF9},
		{"andi", "li a0, 0x1234\nandi a2, a0, 0xFF\nhalt", isa.A2, 0x34},
		{"ori", "ori a2, zero, 0xABC\nhalt", isa.A2, 0xABC},
		{"xori", "li a0, 0xFF\nxori a2, a0, 0xF0\nhalt", isa.A2, 0x0F},
		{"slli", "li a0, 3\nslli a2, a0, 30\nhalt", isa.A2, 0xC0000000},
		{"srli", "li a0, -1\nsrli a2, a0, 28\nhalt", isa.A2, 0xF},
		{"srai", "li a0, -16\nsrai a2, a0, 2\nhalt", isa.A2, 0xFFFFFFFC},
		{"slti", "li a0, -5\nslti a2, a0, -4\nhalt", isa.A2, 1},
		{"sltiu", "li a0, 3\nsltiu a2, a0, 4\nhalt", isa.A2, 1},
		{"lui", "lui a2, 0xABCDE\nhalt", isa.A2, 0xABCDE000},
		{"seqz", "li a0, 0\nseqz a2, a0\nhalt", isa.A2, 1},
		{"snez", "li a0, 9\nsnez a2, a0\nhalt", isa.A2, 1},
		{"neg", "li a0, 5\nneg a2, a0\nhalt", isa.A2, 0xFFFFFFFB},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cpu, _ := buildCPU(t, c.src)
			run(t, cpu)
			if got := cpu.Reg(c.reg); got != c.want {
				t.Errorf("%s = %#x, want %#x", c.reg, got, c.want)
			}
		})
	}
}

func TestZeroRegisterImmutable(t *testing.T) {
	cpu, _ := buildCPU(t, `
		addi zero, zero, 42
		li   a0, 99
		mv   zero, a0
		add  a1, zero, zero
		halt
	`)
	run(t, cpu)
	if cpu.Reg(isa.Zero) != 0 {
		t.Errorf("zero register = %d", cpu.Reg(isa.Zero))
	}
	if cpu.Reg(isa.A1) != 0 {
		t.Errorf("a1 = %d, want 0", cpu.Reg(isa.A1))
	}
}

func TestLoadsAndStores(t *testing.T) {
	cpu, p := buildCPU(t, `
		.data
	buf:	.space 16
	vals:	.word 0xDEADBEEF
		.text
	entry:
		la   s0, buf
		li   t0, 0x11223344
		sw   t0, 0(s0)
		lw   a0, 0(s0)      ; word round trip
		lh   a1, 0(s0)      ; 0x3344 sign-extended (positive)
		lhu  a2, 2(s0)      ; 0x1122
		lb   a3, 3(s0)      ; 0x11
		la   s1, vals
		lw   t1, 0(s1)
		sb   t1, 8(s0)      ; low byte 0xEF
		lb   t2, 8(s0)      ; sign extends to 0xFFFFFFEF
		lbu  t3, 8(s0)
		sh   t1, 12(s0)
		lhu  t4, 12(s0)
		halt
	`)
	_ = p
	run(t, cpu)
	checks := []struct {
		r    isa.Reg
		want uint32
	}{
		{isa.A0, 0x11223344},
		{isa.A1, 0x3344},
		{isa.A2, 0x1122},
		{isa.A3, 0x11},
		{isa.T2, 0xFFFFFFEF},
		{isa.T3, 0xEF},
		{isa.T4, 0xBEEF},
	}
	for _, c := range checks {
		if got := cpu.Reg(c.r); got != c.want {
			t.Errorf("%s = %#x, want %#x", c.r, got, c.want)
		}
	}
}

func TestNegativeLoadSignExtension(t *testing.T) {
	cpu, _ := buildCPU(t, `
		.data
	v:	.half 0x8000
		.text
	e:	la  s0, v
		lh  a0, 0(s0)
		lhu a1, 0(s0)
		halt
	`)
	run(t, cpu)
	if got := cpu.Reg(isa.A0); got != 0xFFFF8000 {
		t.Errorf("lh = %#x, want 0xFFFF8000", got)
	}
	if got := cpu.Reg(isa.A1); got != 0x8000 {
		t.Errorf("lhu = %#x, want 0x8000", got)
	}
}

func TestBranchesAndLoop(t *testing.T) {
	// Sum 1..10 with a loop.
	cpu, _ := buildCPU(t, `
		li   t0, 0     ; i
		li   t1, 0     ; sum
		li   t2, 10
	loop:
		addi t0, t0, 1
		add  t1, t1, t0
		blt  t0, t2, loop
		mv   a0, t1
		halt
	`)
	steps, reason := run(t, cpu)
	if reason != StopHalt {
		t.Errorf("reason = %v, want StopHalt", reason)
	}
	if got := cpu.Reg(isa.A0); got != 55 {
		t.Errorf("sum = %d, want 55", got)
	}
	// 6 setup (3 li = 6) + 10 iterations * 3 + mv + halt = 6+30+2 = 38.
	if steps != 38 {
		t.Errorf("steps = %d, want 38", steps)
	}
}

func TestCallReturn(t *testing.T) {
	cpu, _ := buildCPU(t, `
	main:
		li   a0, 20
		call double
		call double
		halt
	double:
		add  a0, a0, a0
		ret
	`)
	run(t, cpu)
	if got := cpu.Reg(isa.A0); got != 80 {
		t.Errorf("a0 = %d, want 80", got)
	}
}

func TestStackPushPop(t *testing.T) {
	cpu, _ := buildCPU(t, `
		addi sp, sp, -8
		li   t0, 111
		li   t1, 222
		sw   t0, 0(sp)
		sw   t1, 4(sp)
		lw   a0, 0(sp)
		lw   a1, 4(sp)
		addi sp, sp, 8
		halt
	`)
	run(t, cpu)
	if cpu.Reg(isa.A0) != 111 || cpu.Reg(isa.A1) != 222 {
		t.Errorf("a0=%d a1=%d, want 111 222", cpu.Reg(isa.A0), cpu.Reg(isa.A1))
	}
}

func TestReturnToFramework(t *testing.T) {
	// The framework convention: ra holds ReturnAddress; a bare ret ends
	// the run with StopReturn.
	cpu, _ := buildCPU(t, `
		li  a0, 7
		ret
	`)
	_, reason := run(t, cpu)
	if reason != StopReturn {
		t.Errorf("reason = %v, want StopReturn", reason)
	}
	if cpu.Reg(isa.A0) != 7 {
		t.Errorf("a0 = %d", cpu.Reg(isa.A0))
	}
}

func TestPacketRegionAccess(t *testing.T) {
	cpu, _ := buildCPU(t, `
		lw   a1, 0(a0)       ; read packet word
		addi a1, a1, 1
		sw   a1, 0(a0)       ; write it back
		halt
	`)
	pkt := cpu.Layout.PacketBase
	cpu.Mem.Write32(pkt, 41)
	cpu.SetReg(isa.A0, pkt)
	run(t, cpu)
	if got := cpu.Mem.Read32(pkt); got != 42 {
		t.Errorf("packet word = %d, want 42", got)
	}
}

func faultKind(t *testing.T, err error) FaultKind {
	t.Helper()
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("error %v is not a *Fault", err)
	}
	return f.Kind
}

func TestFaults(t *testing.T) {
	cases := []struct {
		name string
		src  string
		prep func(*CPU)
		want FaultKind
	}{
		{"unmapped load", "li s0, 0x40000000\nlw a0, 0(s0)\nhalt", nil, FaultUnmapped},
		{"unmapped store", "li s0, 0x40000000\nsw a0, 0(s0)\nhalt", nil, FaultUnmapped},
		{"nil deref", "lw a0, 0(zero)\nhalt", nil, FaultUnmapped},
		{"unaligned word", "li s0, 0x20000002\nlw a0, 0(s0)\nhalt", nil, FaultUnaligned},
		{"unaligned half store", "li s0, 0x20000001\nsh a0, 0(s0)\nhalt", nil, FaultUnaligned},
		{"text write", "la s0, e\ne: sw a0, 0(s0)\nhalt", nil, FaultTextWrite},
		{"text read as data", "la s0, e\ne: lw a0, 0(s0)\nhalt", nil, FaultUnmapped},
		{"run off end", "nop", nil, FaultBadFetch},
		{"wild jump", "li s0, 0x00001000\njr s0\nhalt", nil, FaultBadFetch},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cpu, _ := buildCPU(t, c.src)
			cpu.Regs[isa.RA] = 0 // force "run off end" rather than clean return
			if c.prep != nil {
				c.prep(cpu)
			}
			_, _, err := cpu.Run(1000)
			if err == nil {
				t.Fatal("run succeeded, want fault")
			}
			if got := faultKind(t, err); got != c.want {
				t.Errorf("fault = %v, want %v (%v)", got, c.want, err)
			}
		})
	}
}

func TestStepLimit(t *testing.T) {
	cpu, _ := buildCPU(t, "loop: j loop")
	_, _, err := cpu.Run(100)
	if err == nil || faultKind(t, err) != FaultStepLimit {
		t.Fatalf("err = %v, want step limit fault", err)
	}
	if cpu.Steps() != 100 {
		t.Errorf("Steps() = %d, want 100", cpu.Steps())
	}
}

// traceRecorder captures tracer callbacks for assertions.
type traceRecorder struct {
	pcs  []uint32
	mems []memEvent
}

type memEvent struct {
	addr   uint32
	size   uint8
	write  bool
	region Region
}

func (r *traceRecorder) Instr(pc uint32, in isa.Instruction) { r.pcs = append(r.pcs, pc) }
func (r *traceRecorder) Mem(pc, addr uint32, size uint8, write bool, region Region) {
	r.mems = append(r.mems, memEvent{addr, size, write, region})
}

func TestTracerObservesEverything(t *testing.T) {
	cpu, p := buildCPU(t, `
		.data
	v:	.word 5
		.text
	e:	la   s0, v
		lw   t0, 0(s0)      ; data read
		lw   t1, 0(a0)      ; packet read
		sw   t0, 4(a0)      ; packet write
		addi sp, sp, -4
		sw   t0, 0(sp)      ; stack write
		halt
	`)
	_ = p
	rec := &traceRecorder{}
	cpu.Tracer = rec
	cpu.SetReg(isa.A0, cpu.Layout.PacketBase)
	steps, _ := run(t, cpu)
	if uint64(len(rec.pcs)) != steps {
		t.Errorf("tracer saw %d instructions, run reported %d", len(rec.pcs), steps)
	}
	// PCs must be sequential from the text base for this straight-line code
	// (la is 2 instructions).
	for i, pc := range rec.pcs {
		want := p.TextBase + uint32(i)*4
		if pc != want {
			t.Errorf("pc[%d] = %#x, want %#x", i, pc, want)
		}
	}
	wantMems := []memEvent{
		{p.DataBase, 4, false, RegionData},
		{cpu.Layout.PacketBase, 4, false, RegionPacket},
		{cpu.Layout.PacketBase + 4, 4, true, RegionPacket},
		{cpu.Layout.StackEnd - 4, 4, true, RegionStack},
	}
	if len(rec.mems) != len(wantMems) {
		t.Fatalf("tracer saw %d mem events, want %d: %+v", len(rec.mems), len(wantMems), rec.mems)
	}
	for i, w := range wantMems {
		if rec.mems[i] != w {
			t.Errorf("mem[%d] = %+v, want %+v", i, rec.mems[i], w)
		}
	}
}

func TestLayoutClassify(t *testing.T) {
	l := Layout{
		TextBase: 0x1000, TextEnd: 0x2000,
		PacketBase: 0x20000000, PacketEnd: 0x20000800,
		DataBase: 0x10000000, DataEnd: 0x10100000,
		StackBase: 0x7FFF0000, StackEnd: 0x80000000,
	}
	cases := []struct {
		addr uint32
		want Region
	}{
		{0x0FFF, RegionNone},
		{0x1000, RegionText},
		{0x1FFF, RegionText},
		{0x2000, RegionNone},
		{0x20000000, RegionPacket},
		{0x200007FF, RegionPacket},
		{0x20000800, RegionNone},
		{0x10000000, RegionData},
		{0x100FFFFF, RegionData},
		{0x7FFF0000, RegionStack},
		{0x7FFFFFFF, RegionStack},
		{0x80000000, RegionNone},
		{0xFFFFFFF0, RegionNone},
	}
	for _, c := range cases {
		if got := l.Classify(c.addr); got != c.want {
			t.Errorf("Classify(%#x) = %v, want %v", c.addr, got, c.want)
		}
	}
}

func TestMemoryRoundTrip(t *testing.T) {
	m := NewMemory()
	// Property: Write32 then Read32 round-trips at any aligned address.
	f := func(addr uint32, v uint32) bool {
		addr &^= 3
		m.Write32(addr, v)
		return m.Read32(addr) == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestMemoryLittleEndian(t *testing.T) {
	m := NewMemory()
	m.Write32(0x100, 0x04030201)
	for i := uint32(0); i < 4; i++ {
		if got := m.Read8(0x100 + i); got != uint8(i+1) {
			t.Errorf("byte %d = %d, want %d", i, got, i+1)
		}
	}
	if got := m.Read16(0x100); got != 0x0201 {
		t.Errorf("Read16 = %#x", got)
	}
	if got := m.Read16(0x102); got != 0x0403 {
		t.Errorf("Read16+2 = %#x", got)
	}
}

func TestMemoryCrossPageAccess(t *testing.T) {
	m := NewMemory()
	boundary := uint32(2 * pageSize)
	m.WriteBytes(boundary-2, []byte{1, 2, 3, 4})
	if got := m.ReadBytes(boundary-2, 4); got[0] != 1 || got[3] != 4 {
		t.Errorf("cross-page bytes = %v", got)
	}
	// Unaligned word access straddling pages via Read32 (host side; the
	// CPU would fault first).
	m.Write32(boundary-2, 0xAABBCCDD)
	if got := m.Read32(boundary - 2); got != 0xAABBCCDD {
		t.Errorf("cross-page word = %#x", got)
	}
}

func TestMemoryZeroAndSparse(t *testing.T) {
	m := NewMemory()
	if m.Read32(0x5000) != 0 {
		t.Error("untouched memory not zero")
	}
	if m.PageCount() != 0 {
		t.Error("read allocated a page")
	}
	m.Write32(0x5000, 7)
	if m.PageCount() != 1 {
		t.Errorf("PageCount = %d, want 1", m.PageCount())
	}
	m.Zero(0x5000, 4)
	if m.Read32(0x5000) != 0 {
		t.Error("Zero did not clear")
	}
	// Zeroing unallocated regions must not allocate.
	m.Zero(0x100000, 1<<16)
	if m.PageCount() != 1 {
		t.Errorf("Zero allocated pages: %d", m.PageCount())
	}
}

func TestWriteBytesReadBytesRoundTrip(t *testing.T) {
	m := NewMemory()
	f := func(addr uint32, data []byte) bool {
		if len(data) > 1<<16 {
			data = data[:1<<16]
		}
		// Avoid wrapping the 32-bit address space.
		if addr > 0xFFFF0000 {
			addr = 0xFFFF0000
		}
		m.WriteBytes(addr, data)
		got := m.ReadBytes(addr, len(data))
		for i := range data {
			if got[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestJALRAlignsTarget(t *testing.T) {
	// jalr masks the low two bits of the target.
	cpu, p := buildCPU(t, `
		la  s0, target
		ori s0, s0, 3
		jalr ra, 0(s0)
	bad:	halt
	target:
		li  a0, 1
		halt
	`)
	run(t, cpu)
	if cpu.Reg(isa.A0) != 1 {
		t.Errorf("jalr did not mask alignment bits; a0 = %d", cpu.Reg(isa.A0))
	}
	_ = p
}

func TestRegionString(t *testing.T) {
	for r, want := range regionNames {
		if got := r.String(); got != want {
			t.Errorf("Region(%d).String() = %q, want %q", r, got, want)
		}
	}
	if got := Region(99).String(); got == "" {
		t.Error("unknown region produced empty string")
	}
}

func TestFaultError(t *testing.T) {
	f := &Fault{Kind: FaultUnmapped, PC: 0x1000, Addr: 0x4}
	msg := f.Error()
	for _, frag := range []string{"unmapped", "0x1000", "0x4"} {
		if !contains(msg, frag) {
			t.Errorf("fault message %q missing %q", msg, frag)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestPacketWriteHighWatermark(t *testing.T) {
	// Stores into the packet region must advance the watermark to the
	// store's exclusive end; data/stack stores must not move it.
	c, _ := buildCPU(t, `
		li  t0, 0x20000000
		li  t1, 0xAB
		sb  t1, 100(t0)
		sw  t1, 200(t0)
		la  t2, scratch
		sw  t1, 0(t2)
		ret
		.data
	scratch: .word 0
	`)
	if c.PacketWriteHigh() != 0 {
		t.Fatalf("fresh CPU watermark = %#x", c.PacketWriteHigh())
	}
	run(t, c)
	if got := c.PacketWriteHigh(); got != 0x20000000+204 {
		t.Errorf("watermark = %#x, want %#x", got, 0x20000000+204)
	}
	c.ResetPacketWriteHigh()
	if c.PacketWriteHigh() != 0 {
		t.Error("watermark not reset")
	}
}

func TestFaultErrorsIsAs(t *testing.T) {
	cpu, _ := buildCPU(t, "li s0, 0x40000000\nlw a0, 0(s0)\nhalt")
	_, _, err := cpu.Run(100)
	if err == nil {
		t.Fatal("run succeeded, want fault")
	}
	// Matching by bare kind, through fmt wrapping.
	wrapped := fmt.Errorf("core 3: packet 17: %w", err)
	if !errors.Is(wrapped, FaultUnmapped) {
		t.Errorf("errors.Is(%v, FaultUnmapped) = false", wrapped)
	}
	if errors.Is(wrapped, FaultStepLimit) {
		t.Error("errors.Is matched the wrong kind")
	}
	// Matching by *Fault template with wildcard PC/Addr.
	if !errors.Is(wrapped, &Fault{Kind: FaultUnmapped}) {
		t.Error("wildcard *Fault template did not match")
	}
	if errors.Is(wrapped, &Fault{Kind: FaultUnmapped, Addr: 0x1234}) {
		t.Error("*Fault template with mismatched Addr matched")
	}
	// errors.As still extracts the concrete fault.
	var f *Fault
	if !errors.As(wrapped, &f) || f.Kind != FaultUnmapped || f.Addr != 0x40000000 {
		t.Errorf("errors.As fault = %+v", f)
	}
}

func TestFaultKindNames(t *testing.T) {
	if got := FaultNone.String(); got != "none" {
		t.Errorf("FaultNone.String() = %q", got)
	}
	for k := FaultBadFetch; k <= FaultHostPanic; k++ {
		if s := k.String(); strings.HasPrefix(s, "fault?") {
			t.Errorf("kind %d has no name", k)
		}
	}
	if got := FaultKind(250).String(); got != "fault?250" {
		t.Errorf("unknown kind String() = %q", got)
	}
}
