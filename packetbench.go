// Package packetbench is the public API of the PacketBench reproduction:
// a programming and simulation environment for characterizing network
// processing workloads, after "Analysis of Network Processing Workloads"
// (Ramaswamy, Weng and Wolf, ISPASS 2005).
//
// PacketBench loads a packet processing application — written in PB32
// assembly, the instruction set of the simulated network-processor core —
// feeds it packets from real or synthetic traces, and collects workload
// statistics for the application code alone (the framework's own work is
// excluded, mirroring the paper's selective accounting). The statistics
// go beyond generic microarchitectural metrics: per-packet instruction
// counts, packet-memory versus non-packet-memory access splits, basic
// block execution probabilities and instruction-store coverage curves.
//
// # Quick start
//
//	pkts := packetbench.GenerateTrace("MRA", 1000)
//	tbl := packetbench.RouteTableFromTrace(pkts, 4096)
//	bench, err := packetbench.New(packetbench.NewIPv4Radix(tbl), packetbench.Options{})
//	if err != nil { ... }
//	records, err := bench.RunPackets(pkts, nil)
//	summary := packetbench.Summarize(records)
//	fmt.Printf("%.0f instructions/packet\n", summary.MeanInstructions)
//
// The four applications evaluated in the paper are provided (IPv4-radix,
// IPv4-trie, Flow Classification, TSA); new applications are ordinary
// App values whose Source is PB32 assembly — see examples/customapp.
package packetbench

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/flow"
	"repro/internal/gen"
	"repro/internal/microarch"
	"repro/internal/npmodel"
	"repro/internal/packet"
	"repro/internal/qsim"
	"repro/internal/route"
	"repro/internal/staticcheck"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/vm"
)

// Core framework types.
type (
	// App is a PacketBench application: PB32 assembly source, an entry
	// symbol, and an optional host-side Init hook that builds tables in
	// simulated memory (the paper's uncounted init()).
	App = core.App
	// Bench is a loaded application on one simulated core.
	Bench = core.Bench
	// Options configures statistics collection and resource limits.
	Options = core.Options
	// Loader is passed to App.Init for placing application state.
	Loader = core.Loader
	// Result is a packet's verdict plus its workload record.
	Result = core.Result
	// PacketRecord is the per-packet workload profile.
	PacketRecord = stats.PacketRecord
	// Summary aggregates a run.
	Summary = stats.Summary
	// RunningStats aggregates packet records on the fly (streaming pool
	// runs feed one from their onResult callback); it also backs the
	// Checkpointer's serialized statistics.
	RunningStats = stats.Running
	// Packet is one captured packet (layer-3 bytes plus metadata).
	Packet = trace.Packet
	// RouteTable is a prefix table for the forwarding applications.
	RouteTable = route.Table
	// TraceProfile parameterizes synthetic trace generation.
	TraceProfile = gen.Profile
	// OccurrenceTable summarizes a per-packet metric distribution.
	OccurrenceTable = analysis.OccurrenceTable
	// CoveragePoint is one point of an instruction-store coverage curve.
	CoveragePoint = analysis.CoveragePoint
	// FiveTuple is the flow key used by classification.
	FiveTuple = packet.FiveTuple
	// FaultPolicy selects how a run reacts to per-packet faults.
	FaultPolicy = core.FaultPolicy
	// ErrorPolicy is the full fault-handling configuration (policy,
	// error budget, retry attempts), set via Options.Errors.
	ErrorPolicy = core.ErrorPolicy
	// FaultKind tags a quarantined packet's failure cause; use it with
	// errors.Is and Summary.FaultCounts.
	FaultKind = vm.FaultKind
	// FaultInjector deterministically corrupts trace packets and forces
	// VM faults at chosen packet indexes — the test harness behind the
	// fault policies.
	FaultInjector = faultinject.Injector
	// Injection is one planned fault in an injection plan.
	Injection = faultinject.Injection
	// Diagnostic is one static-verifier (or assembler lint) finding:
	// severity, check name, source line, and message.
	Diagnostic = staticcheck.Diagnostic
	// Severity classifies a Diagnostic.
	Severity = staticcheck.Severity
	// Diagnostics is an ordered list of findings; HasErrors reports
	// whether any would block loading.
	Diagnostics = staticcheck.List
	// VerifyError is the error New returns when the static verifier
	// refuses an application; its Diags field holds the full report.
	VerifyError = core.VerifyError
	// EngineKind selects the execution engine (Options.Engine): the
	// block-threaded engine (default) or the reference interpreter it is
	// differentially validated against. Both produce bit-identical
	// results.
	EngineKind = core.EngineKind
	// ShedPolicy selects how a streaming pool reacts when its bounded
	// backlog is full (Options.Shed): block the producer (lossless) or
	// drop whole batches, newest- or oldest-first.
	ShedPolicy = core.ShedPolicy
	// StallError is the typed run error surfaced when the progress
	// watchdog (Options.StallTimeout) cancels a run because a worker
	// made no progress; use errors.As to recover worker and packet.
	StallError = core.StallError
	// Checkpoint is the on-disk resume state of a streaming pool run.
	Checkpoint = core.Checkpoint
	// Checkpointer periodically persists a streaming run's committed
	// state; pass it to Pool.RunTraceCheckpointed.
	Checkpointer = core.Checkpointer
	// TraceID fingerprints a trace input so checkpoints refuse to resume
	// against the wrong capture.
	TraceID = core.TraceID
)

// The execution engines.
const (
	EngineThreaded    = core.EngineThreaded
	EngineInterpreter = core.EngineInterpreter
)

// The diagnostic severities.
const (
	SeverityInfo    = staticcheck.Info
	SeverityWarning = staticcheck.Warning
	SeverityError   = staticcheck.Error
)

// The fault policies: abort on the first fault (the default), quarantine
// faulted packets under a budget, or retry before quarantining.
const (
	FailFast      = core.FailFast
	SkipAndRecord = core.SkipAndRecord
	Retry         = core.Retry
)

// The overload shed policies for streaming pool runs.
const (
	ShedBlock      = core.ShedBlock
	ShedDropNewest = core.ShedDropNewest
	ShedDropOldest = core.ShedDropOldest
)

// The fault kinds a packet can be quarantined (or a run aborted) with;
// every run error wraps one, so errors.Is(err, packetbench.FaultStepLimit)
// and friends work across the API.
const (
	FaultBadFetch       = vm.FaultBadFetch
	FaultUnmapped       = vm.FaultUnmapped
	FaultUnaligned      = vm.FaultUnaligned
	FaultTextWrite      = vm.FaultTextWrite
	FaultStepLimit      = vm.FaultStepLimit
	FaultBadInstr       = vm.FaultBadInstr
	FaultOversizePacket = vm.FaultOversizePacket
	FaultHostPanic      = vm.FaultHostPanic
)

// New loads an application onto a fresh simulated core. The program is
// statically verified first (control flow, register dataflow, memory
// ranges, stack discipline — see Verify); error-severity findings refuse
// the load with a *VerifyError unless Options.NoVerify is set.
func New(app *App, opts Options) (*Bench, error) { return core.New(app, opts) }

// Verify runs the static verifier over an application without loading
// it, returning every finding (warnings included). The program is
// checked against the exact memory map New would run it under.
func Verify(app *App) (Diagnostics, error) {
	return core.Verify(app, core.Options{})
}

// ParseInjectionPlan parses a comma-separated fault injection spec
// ("kind@index[:arg[:times]]", kinds flip/trunc/clamp/vmfault plus the
// host-fault kinds panic/delay/stall/readerr/tearckpt) — the format of
// cmd/packetbench's -inject flag.
func ParseInjectionPlan(spec string) ([]Injection, error) { return faultinject.ParsePlan(spec) }

// ParseShedPolicy parses an overload shed policy name: "block",
// "drop-newest"/"newest", or "drop-oldest"/"oldest" — the format of
// cmd/packetbench's -shed flag.
func ParseShedPolicy(s string) (ShedPolicy, error) { return core.ParseShedPolicy(s) }

// NewCheckpointer writes resume checkpoints of a streaming pool run to
// path at most every `every` committed packets, snapshotting agg — the
// same Running the run's onResult callback must feed.
func NewCheckpointer(path string, every int, agg *stats.Running) *Checkpointer {
	return core.NewCheckpointer(path, every, agg)
}

// LoadCheckpoint reads and validates a checkpoint file written by a
// previous run.
func LoadCheckpoint(path string) (*Checkpoint, error) { return core.LoadCheckpoint(path) }

// FingerprintTraceFile fingerprints a trace file for
// Checkpointer.SetTraceID / Checkpoint.ValidateTrace.
func FingerprintTraceFile(path string) (TraceID, error) { return core.FingerprintFile(path) }

// NewFaultInjector builds a deterministic injector: every unspecified
// choice (byte offset, mask, step count) is drawn from seed at
// construction, so runs are reproducible regardless of scheduling.
// Attach FaultInjector.Tracer to each bench to arm forced VM faults.
func NewFaultInjector(seed int64, plan []Injection) *FaultInjector {
	return faultinject.New(seed, plan)
}

// InjectTraceFaults applies the injector's packet-level corruption
// (flips, truncations, length clamps) to the trace, returning the
// corrupted packets; untouched packets are shared, corrupted ones are
// copies.
func InjectTraceFaults(inj *FaultInjector, pkts []*Packet) []*Packet {
	out, err := trace.ReadAll(inj.Reader(trace.NewSliceReader(pkts)), 0)
	if err != nil {
		// A slice reader cannot fail and the injector adds no errors.
		panic(err)
	}
	return out
}

// NewIPv4Radix returns the paper's IPv4-radix forwarding application
// (RFC 1812 forwarding over a BSD-style radix tree).
func NewIPv4Radix(tbl *RouteTable) *App { return apps.IPv4Radix(tbl) }

// NewIPv4Trie returns the paper's IPv4-trie forwarding application
// (RFC 1812 forwarding over an LC-trie).
func NewIPv4Trie(tbl *RouteTable) *App { return apps.IPv4Trie(tbl) }

// NewFlowClassification returns the paper's flow classification
// application with the given hash bucket count (0 selects the default).
func NewFlowClassification(buckets int) *App {
	if buckets == 0 {
		buckets = flow.DefaultBuckets
	}
	return apps.FlowClassification(buckets)
}

// NewTSA returns the paper's TSA prefix-preserving anonymization
// application.
func NewTSA(key uint64) *App { return apps.TSAApp(key) }

// Summarize aggregates per-packet records into run-level averages.
func Summarize(records []PacketRecord) Summary { return stats.Summarize(records) }

// InstructionOccurrences builds the paper's Table V style distribution of
// per-packet instruction counts, keeping the topK most frequent values.
func InstructionOccurrences(records []PacketRecord, topK int) OccurrenceTable {
	return analysis.Occurrences(stats.InstructionCounts(records), topK)
}

// CoverageCurve computes the paper's Figure 8 curve for a finished bench:
// the fraction of packets fully processable with the k most frequently
// executed basic blocks, for every k.
func CoverageCurve(b *Bench, records []PacketRecord) []CoveragePoint {
	return analysis.CoverageCurve(stats.BlockSets(records), b.BlockMap().NumBlocks())
}

// TraceProfiles returns the built-in trace profiles (MRA, COS, ODU, LAN),
// the synthetic stand-ins for the paper's Table I traces.
func TraceProfiles() []TraceProfile { return gen.Profiles() }

// GenerateTrace produces n deterministic synthetic packets from a named
// built-in profile. It panics on an unknown name; use gen.ProfileByName
// via TraceProfiles for error handling.
func GenerateTrace(profile string, n int) []*Packet {
	p, err := gen.ProfileByName(profile)
	if err != nil {
		panic(err)
	}
	return gen.Generate(p, n)
}

// GenerateRouteTable builds a deterministic synthetic routing table with
// a backbone-like prefix length distribution.
func GenerateRouteTable(prefixes int, seed int64) *RouteTable {
	return route.GenerateTable(route.GenOptions{Prefixes: prefixes, Seed: seed})
}

// RouteTableFromTrace derives a routing table covering the destinations
// of the given packets, so forwarding lookups find deep matches (the
// paper's uniform-coverage setup).
func RouteTableFromTrace(pkts []*Packet, maxPrefixes int) *RouteTable {
	dsts := make([]uint32, 0, len(pkts))
	for _, p := range pkts {
		if h, err := packet.ParseIPv4(p.Data); err == nil {
			dsts = append(dsts, h.Dst)
		}
	}
	return route.TableFromTraffic(dsts, maxPrefixes, 16, 1)
}

// formatForPath picks a trace format from a file extension.
func formatForPath(path string) (trace.Format, error) {
	switch strings.ToLower(filepath.Ext(path)) {
	case ".pcap", ".cap", ".dump":
		return trace.FormatPcap, nil
	case ".tsh":
		return trace.FormatTSH, nil
	}
	return 0, fmt.Errorf("packetbench: cannot infer trace format from %q (use .pcap or .tsh)", path)
}

// ReadTraceFile loads up to limit packets (limit <= 0 means all) from a
// pcap (.pcap/.cap/.dump) or NLANR TSH (.tsh) file.
func ReadTraceFile(path string, limit int) ([]*Packet, error) {
	format, err := formatForPath(path)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r, err := trace.NewReader(f, format)
	if err != nil {
		return nil, err
	}
	return trace.ReadAll(r, limit)
}

// WriteTraceFile writes packets to a pcap or TSH file, inferring the
// format from the extension.
func WriteTraceFile(path string, pkts []*Packet) error {
	format, err := formatForPath(path)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w, err := trace.NewWriter(f, format)
	if err != nil {
		f.Close()
		return err
	}
	for _, p := range pkts {
		if err := w.WritePacket(p); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}

// Microarchitectural profiling and system modeling -----------------------

// MicroarchProfiler computes instruction mix, branch prediction, cache
// and cycle statistics for a run; attach with Bench.AddTracer.
type MicroarchProfiler = microarch.Profiler

// Workload is a per-packet processing profile for the system model.
type Workload = npmodel.Workload

// Hardware parameterizes the network-processor system model.
type Hardware = npmodel.Hardware

// NewMicroarchProfiler builds a profiler with two-way 16B-line caches of
// the given capacities (either may be 0 to omit that cache).
func NewMicroarchProfiler(icacheBytes, dcacheBytes int) (*MicroarchProfiler, error) {
	var ic, dc *microarch.Cache
	var err error
	if icacheBytes > 0 {
		if ic, err = microarch.NewCache(icacheBytes, 16, 2); err != nil {
			return nil, err
		}
	}
	if dcacheBytes > 0 {
		if dc, err = microarch.NewCache(dcacheBytes, 16, 2); err != nil {
			return nil, err
		}
	}
	return microarch.NewProfiler(ic, dc), nil
}

// DefaultHardware returns the IXP2400-flavored system model operating
// point.
func DefaultHardware() Hardware { return npmodel.DefaultHardware }

// CompareTopologies renders a parallel-vs-pipeline throughput comparison
// for a measured workload (the paper's "allocation of processing tasks"
// and "developing novel NP architectures" use cases).
func CompareTopologies(name string, w Workload, h Hardware, meanPacketBytes float64) (string, error) {
	return npmodel.CompareTopologies(name, w, h, meanPacketBytes)
}

// Pool runs one application on several independent simulated cores via a
// chunked work-queue scheduler with first-error cancellation and a
// streaming RunTrace for traces too large to hold in memory; see
// core.Pool.
type Pool = core.Pool

// NewPool builds a pool of n simulated cores running app.
func NewPool(app *App, n int, opts Options) (*Pool, error) {
	return core.NewPool(app, n, opts)
}

// Queueing-delay simulation ----------------------------------------------

// QueueJob is one packet's arrival time and service demand for the
// delay simulator.
type QueueJob = qsim.Job

// QueueConfig parameterizes the simulated port (engines, queue bound).
type QueueConfig = qsim.Config

// QueueResult summarizes a delay simulation.
type QueueResult = qsim.Result

// RunQueue simulates FCFS service of measured per-packet jobs through a
// multi-engine port, returning delay percentiles, utilization and loss —
// the paper's processing-delay use case.
func RunQueue(jobs []QueueJob, cfg QueueConfig) (*QueueResult, error) {
	return qsim.Run(jobs, cfg)
}

// QueueJobs builds the job list for RunQueue from trace timestamps and
// per-packet cycle counts at the given engine clock.
func QueueJobs(secs, usecs []uint32, cycles []uint64, clockHz float64) ([]QueueJob, error) {
	return qsim.JobsFromMeasurements(secs, usecs, cycles, clockHz)
}

// NewPayloadScan returns the payload-processing extension application:
// scan every payload for a 4-byte signature (verdict = match count).
func NewPayloadScan(sig [4]byte) *App { return apps.PayloadScan(sig) }

// NewFrag returns the fragmentation application (CommBench's FRAG
// kernel): packets above mtu are split into RFC 791 fragments (verdict
// = fragment count; 0 = dropped for don't-fragment).
func NewFrag(mtu int) *App { return apps.Frag(mtu) }
