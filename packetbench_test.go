package packetbench

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestFacadeQuickstartFlow(t *testing.T) {
	pkts := GenerateTrace("LAN", 200)
	if len(pkts) != 200 {
		t.Fatalf("generated %d packets", len(pkts))
	}
	tbl := RouteTableFromTrace(pkts, 1000)
	if len(tbl.Entries) == 0 {
		t.Fatal("empty routing table")
	}
	for _, app := range []*App{
		NewIPv4Radix(tbl), NewIPv4Trie(tbl), NewFlowClassification(0), NewTSA(1),
	} {
		bench, err := New(app, Options{})
		if err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}
		records, err := bench.RunPackets(pkts, nil)
		if err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}
		s := Summarize(records)
		if s.Packets != 200 || s.MeanInstructions == 0 {
			t.Errorf("%s: summary %+v", app.Name, s)
		}
		occ := InstructionOccurrences(records, 3)
		if occ.Total != 200 || len(occ.Top) == 0 {
			t.Errorf("%s: occurrences %+v", app.Name, occ)
		}
		curve := CoverageCurve(bench, records)
		if len(curve) != bench.BlockMap().NumBlocks() {
			t.Errorf("%s: curve has %d points for %d blocks",
				app.Name, len(curve), bench.BlockMap().NumBlocks())
		}
		if last := curve[len(curve)-1]; last.Coverage < 0.999 {
			t.Errorf("%s: curve tops out at %v", app.Name, last.Coverage)
		}
	}
}

func TestFacadeTraceProfiles(t *testing.T) {
	ps := TraceProfiles()
	if len(ps) != 4 {
		t.Fatalf("%d profiles", len(ps))
	}
	names := map[string]bool{}
	for _, p := range ps {
		names[p.Name] = true
	}
	for _, want := range []string{"MRA", "COS", "ODU", "LAN"} {
		if !names[want] {
			t.Errorf("profile %s missing", want)
		}
	}
}

func TestFacadeGenerateTracePanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("GenerateTrace with unknown profile did not panic")
		}
	}()
	GenerateTrace("BOGUS", 1)
}

func TestFacadeGenerateRouteTable(t *testing.T) {
	tbl := GenerateRouteTable(500, 3)
	if len(tbl.Entries) != 500 {
		t.Fatalf("%d entries", len(tbl.Entries))
	}
}

func TestFacadeTraceFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	// LAN traffic carries no IP options; the TSH format cannot represent
	// optioned packets (its records fix the IP header at 20 bytes).
	pkts := GenerateTrace("LAN", 40)
	for _, name := range []string{"t.pcap", "t.tsh"} {
		path := filepath.Join(dir, name)
		if err := WriteTraceFile(path, pkts); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := ReadTraceFile(path, 0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(got) != len(pkts) {
			t.Errorf("%s: read %d packets, wrote %d", name, len(got), len(pkts))
		}
		limited, err := ReadTraceFile(path, 5)
		if err != nil || len(limited) != 5 {
			t.Errorf("%s: limited read gave %d, %v", name, len(limited), err)
		}
	}
	if err := WriteTraceFile(filepath.Join(dir, "t.xyz"), pkts); err == nil ||
		!strings.Contains(err.Error(), "format") {
		t.Errorf("unknown extension accepted: %v", err)
	}
	if _, err := ReadTraceFile(filepath.Join(dir, "absent.pcap"), 0); err == nil {
		t.Error("reading a missing file succeeded")
	}
	if _, err := ReadTraceFile(filepath.Join(dir, "t.xyz"), 0); err == nil {
		t.Error("unknown extension accepted on read")
	}
	// Make sure nothing was silently created for the failed write.
	if _, err := os.Stat(filepath.Join(dir, "t.xyz")); err == nil {
		t.Error("failed write left a file behind")
	}
}

func TestFacadeCustomApp(t *testing.T) {
	// The facade must support fully custom applications (the paper's
	// extensibility claim): a byte-counter app written inline.
	app := &App{
		Name: "bytecount",
		Source: `
			.data
total:		.word 0
			.text
			.global process_packet
process_packet:
			la   t0, total
			lw   t1, 0(t0)
			add  t1, t1, a1
			sw   t1, 0(t0)
			mv   a0, a1
			ret
		`,
		Entry: "process_packet",
	}
	bench, err := New(app, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pkts := GenerateTrace("LAN", 50)
	want := uint32(0)
	for _, p := range pkts {
		want += uint32(len(p.Data))
	}
	if _, err := bench.RunPackets(pkts, nil); err != nil {
		t.Fatal(err)
	}
	addr, err := bench.Loader().Symbol("total")
	if err != nil {
		t.Fatal(err)
	}
	if got := bench.Memory().Read32(addr); got != want {
		t.Errorf("total bytes = %d, want %d", got, want)
	}
}

func TestFacadePool(t *testing.T) {
	pkts := GenerateTrace("LAN", 64)
	tbl := RouteTableFromTrace(pkts, 500)
	pool, err := NewPool(NewIPv4Trie(tbl), 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	recs, err := pool.RunPackets(pkts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(pkts) {
		t.Fatalf("%d records", len(recs))
	}
	s := Summarize(recs)
	if s.MeanInstructions == 0 {
		t.Error("empty records from pool")
	}
}

func TestFacadeVerify(t *testing.T) {
	// A clean custom app verifies without findings.
	ok := &App{Name: "ok", Source: ".global e\ne: lw t0, 0(a0)\nhalt", Entry: "e"}
	ds, err := Verify(ok)
	if err != nil || len(ds) != 0 {
		t.Fatalf("Verify(ok) = %v, %v", ds, err)
	}
	// A program that escapes the text segment is refused by New with a
	// typed error carrying the diagnostics.
	bad := &App{Name: "bad", Source: ".global e\ne: j 0x100000\nhalt", Entry: "e"}
	ds, err = Verify(bad)
	if err != nil || !ds.HasErrors() {
		t.Fatalf("Verify(bad) = %v, %v; want errors", ds, err)
	}
	_, err = New(bad, Options{})
	var verr *VerifyError
	if !errors.As(err, &verr) {
		t.Fatalf("New(bad) = %v; want *VerifyError", err)
	}
	for _, d := range verr.Diags.Errors() {
		if d.Severity != SeverityError {
			t.Errorf("Errors() returned non-error %v", d)
		}
		if d.Line == 0 || d.Check == "" {
			t.Errorf("diagnostic lacks location or check: %+v", d)
		}
	}
	// NoVerify is the escape hatch.
	if _, err := New(bad, Options{NoVerify: true}); err != nil {
		t.Fatalf("NoVerify: %v", err)
	}
}
